//! Streaming data pipeline: the `*.mbsds` on-disk dataset format and the
//! double-buffered background-prefetch [`StreamLoader`] that feeds
//! [`train_grouped_source`](crate::training::train_grouped_source) from
//! disk **bitwise identically** to in-memory training.
//!
//! The source paper's discipline — keep the working set cache-sized, reuse
//! instead of re-materialize — stops at the dataset boundary today:
//! [`crate::data::generate`] materializes every sample up front. This
//! module extends it to input data: samples live on disk in checksummed
//! chunks, and a background thread streams shuffled batches into a small
//! ring of arena-pooled tensors that the training step consumes and
//! recycles, so steady-state streamed training allocates nothing and
//! (ideally) never waits.
//!
//! # On-disk format (`*.mbsds`, version 1)
//!
//! One ASCII header line, a JSON chunk index, then the raw chunk bytes —
//! the same magic/version/length/FNV-1a discipline as the checkpoint
//! format (see [`crate::checkpoint`]):
//!
//! ```text
//! MBSDS <version> <n> <c> <h> <w> <chunk-samples> <index-bytes> <index-fnv1a64-hex>\n
//! {"chunks":[{"samples":...,"bytes":...,"checksum":...},...]}
//! <chunk 0 bytes><chunk 1 bytes>...
//! ```
//!
//! Every chunk holds `chunk-samples` records (the last may hold fewer);
//! a record is a little-endian `u32` label followed by `c*h*w`
//! little-endian `f32` values — the exact bit patterns of the in-memory
//! tensor, so a save → open round trip is bitwise. The header checksums
//! the index and the index checksums each chunk, so validation is
//! hierarchical: [`DiskDataset::open`] proves the header and index
//! (magic → version → geometry → index length → index checksum → total
//! file length, in that order), and each chunk proves itself when first
//! read. A truncated or mid-chunk-torn file fails the total-length check
//! at open; a bit flip inside a chunk fails that chunk's checksum at read
//! time — either way a structured [`LoaderError`], never a garbage
//! tensor. Files are written atomically (tmp + fsync + rename +
//! directory fsync), so a crash mid-save never leaves a torn `*.mbsds`
//! under the final name.
//!
//! # The prefetch loop
//!
//! [`StreamLoader`] owns one background thread. Each epoch the trainer
//! hands it the epoch's shuffled index order (computed trainer-side, so
//! shuffle RNG consumption is identical to the in-memory path and
//! checkpoint kill/resume survives unchanged) and the thread assembles
//! batches into recycled [`Batch`] buffers: `prefetch` finished batches
//! queue in a bounded channel while one more is being filled and one is
//! being consumed. The trainer returns each consumed buffer through a
//! recycle channel, so after warm-up the same `prefetch + 2` tensors
//! cycle forever — zero arena misses in steady state (pinned by
//! `tests/grouped_steady_state.rs`). Dropping the loader closes every
//! channel and joins the thread, even mid-epoch, so a training error
//! never leaks the thread or its buffers.

use std::fmt;
use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use mbs_core::fnv1a64;
use mbs_tensor::Tensor;

use crate::data::{generate_image_into, Dataset};

/// Current dataset format version (the second header field).
pub const MBSDS_VERSION: u64 = 1;

/// Header magic (the first header field).
pub const MBSDS_MAGIC: &str = "MBSDS";

/// File extension of finished datasets.
pub const MBSDS_EXT: &str = "mbsds";

/// Default samples per chunk when the `MBS_LOADER_CHUNK` knob is unset.
pub const DEFAULT_CHUNK_SAMPLES: usize = 64;

/// Default prefetch depth when the `MBS_LOADER_PREFETCH` knob is unset.
pub const DEFAULT_PREFETCH: usize = 2;

/// Chunks the background thread keeps decoded at once. Shuffled access
/// hops between chunks, so a single-slot cache would thrash; a handful
/// bounds both re-reads and resident bytes.
const CACHE_CHUNKS: usize = 8;

/// Samples per chunk for writers: the `MBS_LOADER_CHUNK` knob (positive
/// integer, warn + fall back) or [`DEFAULT_CHUNK_SAMPLES`].
pub fn chunk_samples_from_env() -> usize {
    mbs_tensor::env::positive_usize_knob("MBS_LOADER_CHUNK").unwrap_or(DEFAULT_CHUNK_SAMPLES)
}

/// Prefetch depth for [`StreamLoader`]s: the `MBS_LOADER_PREFETCH` knob
/// (positive integer, warn + fall back) or [`DEFAULT_PREFETCH`].
pub fn prefetch_from_env() -> usize {
    mbs_tensor::env::positive_usize_knob("MBS_LOADER_PREFETCH").unwrap_or(DEFAULT_PREFETCH)
}

/// Why a dataset file could not be written, opened, or streamed.
#[derive(Debug)]
pub enum LoaderError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file exists but is not a valid dataset (bad magic, malformed
    /// header, index damage, truncation, geometry that does not add up).
    Format(String),
    /// The file has a newer format version than this build understands.
    Version(u64),
    /// A chunk's bytes fail their checksum — external damage inside the
    /// data region. Named so callers can report *which* chunk.
    ChunkCorrupt {
        /// Chunk index within the file.
        chunk: usize,
        /// What the validation found.
        reason: String,
    },
}

impl fmt::Display for LoaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "dataset I/O failed: {e}"),
            Self::Format(msg) => write!(f, "invalid dataset: {msg}"),
            Self::Version(v) => write!(
                f,
                "dataset format version {v} is newer than this build (max {MBSDS_VERSION})"
            ),
            Self::ChunkCorrupt { chunk, reason } => {
                write!(f, "dataset chunk {chunk} is corrupt: {reason}")
            }
        }
    }
}

impl std::error::Error for LoaderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoaderError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One chunk's entry in the JSON index: how many samples it holds, how
/// many bytes it spans, and the FNV-1a 64 checksum of those bytes.
/// Offsets are not stored — chunks are laid out back to back, so chunk
/// `i` starts at the sum of the previous chunks' byte counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkEntry {
    /// Records in this chunk.
    pub samples: usize,
    /// Bytes this chunk spans (`samples * (4 + 4 * c*h*w)`).
    pub bytes: usize,
    /// FNV-1a 64 of the chunk bytes.
    pub checksum: u64,
}

/// The JSON payload between the header line and the data region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ChunkIndex {
    chunks: Vec<ChunkEntry>,
}

/// An opened, header-validated `*.mbsds` file: geometry, chunk index,
/// and positioned reads. Opening proves the header and index; chunk
/// bytes prove themselves (per-chunk checksum) when first read.
#[derive(Debug)]
pub struct DiskDataset {
    path: PathBuf,
    /// `[n, c, h, w]` of the stored image tensor.
    shape: [usize; 4],
    chunk_samples: usize,
    data_start: u64,
    chunks: Vec<ChunkEntry>,
}

impl DiskDataset {
    /// Opens and validates `path`: magic → version → geometry → index
    /// length → index checksum → total file length, in that order. Chunk
    /// contents are *not* read here — each chunk validates on first read,
    /// so opening a terabyte dataset is O(index).
    ///
    /// # Errors
    ///
    /// [`LoaderError::Format`] for damage (named check), a structured
    /// [`LoaderError::Version`] for future versions, [`LoaderError::Io`]
    /// for filesystem failures.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, LoaderError> {
        let path = path.as_ref();
        let bad = |msg: String| LoaderError::Format(msg);
        let mut file = File::open(path)?;

        // Header line: bounded read so a binary blob cannot make us scan
        // gigabytes for a newline.
        let mut head = [0u8; 256];
        let got = read_up_to(&mut file, &mut head)?;
        let nl = head[..got]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| bad("missing header line".into()))?;
        let header = std::str::from_utf8(&head[..nl])
            .map_err(|_| bad("header is not valid UTF-8".into()))?;
        let mut fields = header.split_ascii_whitespace();
        let magic = fields.next().unwrap_or("");
        if magic != MBSDS_MAGIC {
            return Err(bad(format!("bad magic {magic:?} (want {MBSDS_MAGIC:?})")));
        }
        let version: u64 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("header version field is not an integer".into()))?;
        if version > MBSDS_VERSION {
            return Err(LoaderError::Version(version));
        }
        let mut int = |name: &str| -> Result<usize, LoaderError> {
            fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(format!("header {name} field is not an integer")))
        };
        let (n, c, h, w) = (int("n")?, int("c")?, int("h")?, int("w")?);
        let chunk_samples = int("chunk-samples")?;
        let index_len = int("index-bytes")?;
        let index_checksum = fields
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad("header checksum field is not hex".into()))?;
        if fields.next().is_some() {
            return Err(bad("trailing header fields".into()));
        }
        if c == 0 || h == 0 || w == 0 || chunk_samples == 0 {
            return Err(bad(format!(
                "degenerate geometry [{n}, {c}, {h}, {w}] / chunk {chunk_samples}"
            )));
        }

        // Index: declared length, then checksum, then JSON.
        let mut index_bytes = vec![0u8; index_len];
        file.seek(SeekFrom::Start(nl as u64 + 1))?;
        file.read_exact(&mut index_bytes).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                bad("file ends inside the chunk index (truncated write?)".into())
            } else {
                LoaderError::Io(e)
            }
        })?;
        let actual = fnv1a64(&index_bytes);
        if actual != index_checksum {
            return Err(bad(format!(
                "index checksum {actual:016x} does not match header {index_checksum:016x} \
                 (corrupt file?)"
            )));
        }
        let index_text = std::str::from_utf8(&index_bytes)
            .map_err(|_| bad("chunk index is not valid UTF-8".into()))?;
        let index: ChunkIndex = serde_json::from_str(index_text)
            .map_err(|e| bad(format!("chunk index does not parse: {e}")))?;

        // Geometry must add up: per-chunk sample counts against `n` and
        // `chunk_samples`, per-chunk byte counts against the record size,
        // and the summed data region against the actual file length (the
        // mid-chunk-torn-write check).
        let row = c * h * w;
        let record = 4 + 4 * row;
        let mut samples = 0usize;
        let mut data_bytes = 0u64;
        for (i, chunk) in index.chunks.iter().enumerate() {
            let expect = if i + 1 < index.chunks.len() {
                chunk_samples
            } else {
                chunk.samples // the tail chunk may be short
            };
            if chunk.samples == 0 || chunk.samples != expect || chunk.samples > chunk_samples {
                return Err(bad(format!(
                    "chunk {i} holds {} samples (want {expect}, nominal {chunk_samples})",
                    chunk.samples
                )));
            }
            if chunk.bytes != chunk.samples * record {
                return Err(bad(format!(
                    "chunk {i} declares {} bytes for {} samples of {record} bytes",
                    chunk.bytes, chunk.samples
                )));
            }
            samples += chunk.samples;
            data_bytes += chunk.bytes as u64;
        }
        if samples != n {
            return Err(bad(format!(
                "chunks hold {samples} samples but the header declares {n}"
            )));
        }
        let data_start = nl as u64 + 1 + index_len as u64;
        let file_len = file.metadata()?.len();
        if file_len != data_start + data_bytes {
            return Err(bad(format!(
                "file is {file_len} bytes but header + index + chunks need {} \
                 (truncated or torn mid-chunk?)",
                data_start + data_bytes
            )));
        }

        Ok(Self {
            path: path.to_path_buf(),
            shape: [n, c, h, w],
            chunk_samples,
            data_start,
            chunks: index.chunks,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.shape[0]
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.shape[0] == 0
    }

    /// Stored image tensor shape `[n, c, h, w]`.
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// Elements per sample (`c * h * w`).
    pub fn row_elems(&self) -> usize {
        self.shape[1] * self.shape[2] * self.shape[3]
    }

    /// Nominal samples per chunk (the last chunk may hold fewer).
    pub fn chunk_samples(&self) -> usize {
        self.chunk_samples
    }

    /// Number of chunks in the file.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Path this dataset was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of chunk `i`'s first byte within the file.
    fn chunk_offset(&self, i: usize) -> u64 {
        self.data_start + self.chunks[..i].iter().map(|c| c.bytes as u64).sum::<u64>()
    }

    /// Reads and checksum-validates chunk `i` into `buf` (resized to the
    /// chunk's byte count) through the given file handle.
    fn read_chunk_into(
        &self,
        file: &mut File,
        i: usize,
        buf: &mut Vec<u8>,
    ) -> Result<(), LoaderError> {
        let entry = &self.chunks[i];
        buf.resize(entry.bytes, 0);
        file.seek(SeekFrom::Start(self.chunk_offset(i)))?;
        file.read_exact(buf)?;
        let actual = fnv1a64(buf);
        if actual != entry.checksum {
            return Err(LoaderError::ChunkCorrupt {
                chunk: i,
                reason: format!(
                    "checksum {actual:016x} does not match index {:016x}",
                    entry.checksum
                ),
            });
        }
        Ok(())
    }

    /// Loads the whole dataset into memory, validating every chunk. The
    /// result is **bitwise** equal to the [`Dataset`] that was saved
    /// (pinned by the round-trip proptest in `tests/loader_faults.rs`).
    ///
    /// # Errors
    ///
    /// [`LoaderError::ChunkCorrupt`] naming the first damaged chunk;
    /// [`LoaderError::Io`] for filesystem failures.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbs_train::data::generate;
    /// use mbs_train::loader::{save_dataset, DiskDataset};
    ///
    /// let dir = std::env::temp_dir().join("mbsds-doc-load");
    /// let path = dir.join("toy.mbsds");
    /// let set = generate(6, 4, 0.2, 9);
    /// save_dataset(&set, &path).unwrap();
    /// let reloaded = DiskDataset::open(&path).unwrap().load().unwrap();
    /// assert_eq!(reloaded.images, set.images);
    /// assert_eq!(reloaded.labels, set.labels);
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// ```
    pub fn load(&self) -> Result<Dataset, LoaderError> {
        let (tensor, labels) = self.read_prefix(self.len())?;
        Ok(Dataset {
            images: tensor,
            labels,
        })
    }

    /// Reads the first `k` samples (clamped to the dataset length) into a
    /// fresh tensor — the streamed analogue of
    /// [`slice_batch`](crate::module::slice_batch)`(images, 0, k)`, used
    /// for the pre-activation probe batch.
    ///
    /// # Errors
    ///
    /// Same as [`DiskDataset::load`].
    pub fn read_prefix(&self, k: usize) -> Result<(Tensor, Vec<usize>), LoaderError> {
        let k = k.min(self.len());
        let [_, c, h, w] = self.shape;
        let row = self.row_elems();
        let mut file = File::open(&self.path)?;
        let mut tensor = Tensor::uninit(&[k, c, h, w]);
        let mut labels = Vec::with_capacity(k);
        let mut chunk_buf = Vec::new();
        let mut done = 0usize;
        for (i, entry) in self.chunks.iter().enumerate() {
            if done >= k {
                break;
            }
            self.read_chunk_into(&mut file, i, &mut chunk_buf)?;
            let take = entry.samples.min(k - done);
            for s in 0..take {
                let rec = s * (4 + 4 * row);
                labels.push(decode_label(&chunk_buf[rec..rec + 4]));
                decode_row(
                    &chunk_buf[rec + 4..rec + 4 + 4 * row],
                    &mut tensor.data_mut()[(done + s) * row..(done + s + 1) * row],
                );
            }
            done += take;
        }
        Ok((tensor, labels))
    }
}

/// Reads as many bytes as the reader will give into `buf`, stopping at
/// EOF (unlike `read_exact`, short files are not an error here — the
/// header parser decides what "too short" means).
fn read_up_to(file: &mut File, buf: &mut [u8]) -> Result<usize, std::io::Error> {
    let mut got = 0;
    while got < buf.len() {
        match file.read(&mut buf[got..])? {
            0 => break,
            k => got += k,
        }
    }
    Ok(got)
}

fn decode_label(bytes: &[u8]) -> usize {
    u32::from_le_bytes(bytes.try_into().expect("4 label bytes")) as usize
}

fn decode_row(bytes: &[u8], out: &mut [f32]) {
    debug_assert_eq!(bytes.len(), out.len() * 4);
    for (chunk, slot) in bytes.chunks_exact(4).zip(out.iter_mut()) {
        *slot = f32::from_le_bytes(chunk.try_into().expect("4 bytes per f32"));
    }
}

fn encode_record(label: usize, row: &[f32], out: &mut Vec<u8>) {
    out.extend_from_slice(&(label as u32).to_le_bytes());
    for &v in row {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Streams already-encoded chunks into a side `.data` temp file while
/// accumulating the index, then assembles the final file (header, then
/// index, then a data copy) atomically. Writers never hold more than
/// one chunk in memory, so generating a dataset far larger than RAM is
/// fine.
struct ChunkWriter {
    dir: PathBuf,
    final_path: PathBuf,
    data_tmp: PathBuf,
    data: File,
    chunks: Vec<ChunkEntry>,
    shape: [usize; 4],
    chunk_samples: usize,
}

impl ChunkWriter {
    fn new(path: &Path, shape: [usize; 4], chunk_samples: usize) -> Result<Self, LoaderError> {
        let dir = path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .to_path_buf();
        fs::create_dir_all(&dir)?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| LoaderError::Format("dataset path has no file name".into()))?;
        let data_tmp = dir.join(format!("{name}.tmp.data"));
        let data = File::create(&data_tmp)?;
        Ok(Self {
            dir,
            final_path: path.to_path_buf(),
            data_tmp,
            data,
            chunks: Vec::new(),
            shape,
            chunk_samples,
        })
    }

    fn push_chunk(&mut self, samples: usize, bytes: &[u8]) -> Result<(), LoaderError> {
        self.data.write_all(bytes)?;
        self.chunks.push(ChunkEntry {
            samples,
            bytes: bytes.len(),
            checksum: fnv1a64(bytes),
        });
        Ok(())
    }

    /// Writes header + index, appends the staged data, fsyncs, renames
    /// over the final name, and fsyncs the directory — the checkpoint
    /// module's durability protocol, applied to datasets.
    fn finish(mut self) -> Result<(), LoaderError> {
        self.data.sync_all()?;
        let index = serde_json::to_string(&ChunkIndex {
            chunks: std::mem::take(&mut self.chunks),
        })
        .expect("chunk index always serializes");
        let [n, c, h, w] = self.shape;
        let header = format!(
            "{MBSDS_MAGIC} {MBSDS_VERSION} {n} {c} {h} {w} {} {} {:016x}\n",
            self.chunk_samples,
            index.len(),
            fnv1a64(index.as_bytes())
        );
        let name = self
            .final_path
            .file_name()
            .and_then(|f| f.to_str())
            .expect("validated in new");
        let tmp = self.dir.join(format!("{name}.tmp"));
        let mut out = File::create(&tmp)?;
        out.write_all(header.as_bytes())?;
        out.write_all(index.as_bytes())?;
        let mut staged = File::open(&self.data_tmp)?;
        std::io::copy(&mut staged, &mut out)?;
        out.sync_all()?;
        drop(out);
        fs::rename(&tmp, &self.final_path)?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all(); // best effort, like checkpoint::sync_dir
        }
        let _ = fs::remove_file(&self.data_tmp);
        Ok(())
    }
}

/// Saves an in-memory [`Dataset`] as `path` with the chunk size from the
/// `MBS_LOADER_CHUNK` knob (default [`DEFAULT_CHUNK_SAMPLES`]). See
/// [`save_dataset_chunked`].
///
/// # Errors
///
/// Same as [`save_dataset_chunked`].
pub fn save_dataset(set: &Dataset, path: impl AsRef<Path>) -> Result<(), LoaderError> {
    save_dataset_chunked(set, path, chunk_samples_from_env())
}

/// Saves an in-memory [`Dataset`] as an atomic `*.mbsds` file with
/// `chunk_samples` records per chunk. The write is bitwise-faithful:
/// opening and [`DiskDataset::load`]ing the file reproduces `set`
/// exactly, including every f32 bit pattern.
///
/// # Errors
///
/// [`LoaderError::Format`] when the image tensor is not 4-D `[n,c,h,w]`
/// or the label count disagrees with it; [`LoaderError::Io`] for
/// filesystem failures.
pub fn save_dataset_chunked(
    set: &Dataset,
    path: impl AsRef<Path>,
    chunk_samples: usize,
) -> Result<(), LoaderError> {
    let shape = set.images.shape();
    if shape.len() != 4 {
        return Err(LoaderError::Format(format!(
            "dataset images must be [n, c, h, w], got {shape:?}"
        )));
    }
    let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
    if set.labels.len() != n {
        return Err(LoaderError::Format(format!(
            "{n} images but {} labels",
            set.labels.len()
        )));
    }
    let chunk_samples = chunk_samples.max(1);
    let row = c * h * w;
    let mut writer = ChunkWriter::new(path.as_ref(), [n, c, h, w], chunk_samples)?;
    let mut bytes = Vec::with_capacity(chunk_samples * (4 + 4 * row));
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk_samples).min(n);
        bytes.clear();
        for i in start..end {
            encode_record(
                set.labels[i],
                &set.images.data()[i * row..(i + 1) * row],
                &mut bytes,
            );
        }
        writer.push_chunk(end - start, &bytes)?;
        start = end;
    }
    writer.finish()
}

/// Generates `n` synthetic-ImageNet samples of `size × size` straight to
/// disk, one chunk at a time, with the chunk size from `MBS_LOADER_CHUNK`
/// (default [`DEFAULT_CHUNK_SAMPLES`]). See [`generate_to_chunked`].
///
/// # Errors
///
/// Same as [`generate_to_chunked`].
pub fn generate_to(
    path: impl AsRef<Path>,
    n: usize,
    size: usize,
    noise: f32,
    seed: u64,
) -> Result<DiskDataset, LoaderError> {
    generate_to_chunked(path, n, size, noise, seed, chunk_samples_from_env())
}

/// Streaming synthetic-ImageNet generator: the texture classes of
/// [`crate::data::generate`] at configurable count/size, written chunk by
/// chunk so the dataset never has to fit in memory. **Bitwise identical**
/// to `save_dataset_chunked(&generate(n, size, noise, seed), ...)`: both
/// run the same single-RNG-stream per-image routine
/// ([`generate_image_into`]), whose draw order is pinned by the golden
/// checksum test in `data.rs` — the disk generator cannot silently drift
/// from the in-memory one.
///
/// # Errors
///
/// [`LoaderError::Io`] for filesystem failures.
///
/// # Examples
///
/// ```
/// use mbs_train::loader::generate_to_chunked;
///
/// let dir = std::env::temp_dir().join("mbsds-doc-gen");
/// let ds = generate_to_chunked(dir.join("gen.mbsds"), 10, 6, 0.2, 3, 4).unwrap();
/// assert_eq!(ds.shape(), [10, 3, 6, 6]);
/// assert_eq!(ds.num_chunks(), 3); // 4 + 4 + 2 samples
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
pub fn generate_to_chunked(
    path: impl AsRef<Path>,
    n: usize,
    size: usize,
    noise: f32,
    seed: u64,
    chunk_samples: usize,
) -> Result<DiskDataset, LoaderError> {
    let chunk_samples = chunk_samples.max(1);
    let row = 3 * size * size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut writer = ChunkWriter::new(path.as_ref(), [n, 3, size, size], chunk_samples)?;
    let mut image = vec![0.0f32; row];
    let mut bytes = Vec::with_capacity(chunk_samples * (4 + 4 * row));
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk_samples).min(n);
        bytes.clear();
        for _ in start..end {
            let class = generate_image_into(&mut rng, size, noise, &mut image);
            encode_record(class, &image, &mut bytes);
        }
        writer.push_chunk(end - start, &bytes)?;
        start = end;
    }
    writer.finish()?;
    DiskDataset::open(path)
}

/// One prefetched batch: an arena-pooled image tensor and its labels.
/// Hand it back through [`StreamLoader::recycle`] after the training step
/// so the buffer (tensor storage included) is refilled instead of
/// reallocated.
#[derive(Debug)]
pub struct Batch {
    /// Images `[b, c, h, w]`.
    pub images: Tensor,
    /// One label per image row.
    pub labels: Vec<usize>,
}

/// The epoch order the trainer hands the background thread. Keeping the
/// permutation trainer-side keeps shuffle-RNG consumption identical to
/// the in-memory path — the invariant checkpoint kill/resume rides on.
struct EpochPlan {
    order: Vec<usize>,
    batch: usize,
    skip: usize,
}

/// Counters shared with the background thread (written there, read by
/// [`StreamLoader::stats`]).
#[derive(Debug, Default)]
struct SharedCounters {
    bytes_read: AtomicU64,
    chunk_loads: AtomicU64,
    batches_filled: AtomicU64,
}

/// A [`StreamLoader`]'s observable behavior, for benches and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LoaderStats {
    /// Times [`StreamLoader::next_batch`] found the queue empty and had
    /// to block — the prefetch-stall count. Zero means the training step
    /// never waited on disk.
    pub stalls: u64,
    /// Chunk bytes read off disk (re-reads from cache misses included).
    pub bytes_read: u64,
    /// Chunk reads (cache misses) the background thread performed.
    pub chunk_loads: u64,
    /// Batches the background thread finished assembling.
    pub batches_filled: u64,
}

/// Double-buffered background prefetch over a [`DiskDataset`].
///
/// One background thread assembles shuffled batches into a fixed ring of
/// recycled, arena-pooled buffers: `prefetch` finished batches queue in a
/// bounded channel, one more is being filled, one is at the trainer —
/// `prefetch + 2` buffers total, cycling forever. `prefetch = 1` is the
/// degenerate near-synchronous mode CI pins
/// (`MBS_LOADER_PREFETCH=1`).
///
/// Dropping the loader closes every channel (unblocking the thread
/// wherever it sleeps) and joins it — mid-epoch drops, e.g. when the
/// training loop errors, leak neither the thread nor its buffers.
///
/// # Examples
///
/// ```
/// use mbs_train::loader::{generate_to_chunked, DiskDataset, StreamLoader};
///
/// let dir = std::env::temp_dir().join("mbsds-doc-stream");
/// let ds = generate_to_chunked(dir.join("s.mbsds"), 8, 4, 0.2, 5, 4).unwrap();
/// let mut loader = StreamLoader::new(&ds, 2).unwrap();
/// loader.begin_epoch(&[3, 1, 4, 1, 5, 0, 2, 6], 4, 0);
/// for _ in 0..2 {
///     let batch = loader.next_batch().unwrap();
///     assert_eq!(batch.images.shape(), &[4, 3, 4, 4]);
///     loader.recycle(batch);
/// }
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct StreamLoader {
    plan_tx: Option<Sender<EpochPlan>>,
    batch_rx: Option<Receiver<Result<Batch, LoaderError>>>,
    recycle_tx: Option<Sender<Batch>>,
    handle: Option<JoinHandle<()>>,
    counters: Arc<SharedCounters>,
    stalls: u64,
}

impl StreamLoader {
    /// Spawns the prefetch thread over `ds` with the given prefetch depth
    /// (clamped to ≥ 1). The thread opens its own file handle so trainer-
    /// side reads ([`DiskDataset::read_prefix`]) never contend with it.
    ///
    /// # Errors
    ///
    /// [`LoaderError::Io`] if the dataset file cannot be reopened.
    pub fn new(ds: &DiskDataset, prefetch: usize) -> Result<Self, LoaderError> {
        let prefetch = prefetch.max(1);
        let file = File::open(ds.path())?;
        let meta = ThreadMeta {
            shape: ds.shape,
            chunk_samples: ds.chunk_samples,
            data_start: ds.data_start,
            chunks: ds.chunks.clone(),
        };
        let (plan_tx, plan_rx) = std::sync::mpsc::channel::<EpochPlan>();
        let (batch_tx, batch_rx) = std::sync::mpsc::sync_channel(prefetch);
        let (recycle_tx, recycle_rx) = std::sync::mpsc::channel::<Batch>();
        let counters = Arc::new(SharedCounters::default());
        let thread_counters = Arc::clone(&counters);
        let max_bufs = prefetch + 2;
        let handle = std::thread::Builder::new()
            .name("mbs-loader".into())
            .spawn(move || {
                prefetch_thread(
                    file,
                    meta,
                    plan_rx,
                    batch_tx,
                    recycle_rx,
                    thread_counters,
                    max_bufs,
                )
            })
            .map_err(LoaderError::Io)?;
        Ok(Self {
            plan_tx: Some(plan_tx),
            batch_rx: Some(batch_rx),
            recycle_tx: Some(recycle_tx),
            handle: Some(handle),
            counters,
            stalls: 0,
        })
    }

    /// Hands the background thread the epoch's shuffled sample order:
    /// it will assemble batches `order[skip*batch..]` in `batch`-sized
    /// slices (the tail batch may be short). `skip` is the checkpoint-
    /// resume cursor — skipped batches are never read off disk.
    pub fn begin_epoch(&mut self, order: &[usize], batch: usize, skip: usize) {
        if let Some(tx) = &self.plan_tx {
            // A send can only fail if the thread died; next_batch will
            // surface that as a structured error.
            let _ = tx.send(EpochPlan {
                order: order.to_vec(),
                batch: batch.max(1),
                skip,
            });
        }
    }

    /// The next prefetched batch, blocking if the queue is empty (counted
    /// as a stall). Call once per batch announced by [`begin_epoch`].
    ///
    /// # Errors
    ///
    /// A structured [`LoaderError`] when the background thread hit one
    /// (chunk corruption, I/O failure) — the thread then discards the
    /// rest of the epoch and waits for the next plan — or
    /// [`LoaderError::Format`] if the thread is gone entirely.
    ///
    /// [`begin_epoch`]: StreamLoader::begin_epoch
    pub fn next_batch(&mut self) -> Result<Batch, LoaderError> {
        let rx = self
            .batch_rx
            .as_ref()
            .expect("receiver lives until the loader drops");
        match rx.try_recv() {
            Ok(msg) => msg,
            Err(TryRecvError::Empty) => {
                self.stalls += 1;
                rx.recv()
                    .map_err(|_| LoaderError::Format("loader thread exited".into()))?
            }
            Err(TryRecvError::Disconnected) => {
                Err(LoaderError::Format("loader thread exited".into()))
            }
        }
    }

    /// Returns a consumed batch buffer to the ring so the background
    /// thread refills it in place (same tensor storage, no allocation).
    pub fn recycle(&mut self, batch: Batch) {
        if let Some(tx) = &self.recycle_tx {
            let _ = tx.send(batch);
        }
    }

    /// Counters so far: trainer-side stalls plus the thread's disk and
    /// batch counters.
    pub fn stats(&self) -> LoaderStats {
        LoaderStats {
            stalls: self.stalls,
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            chunk_loads: self.counters.chunk_loads.load(Ordering::Relaxed),
            batches_filled: self.counters.batches_filled.load(Ordering::Relaxed),
        }
    }

    /// Shuts the loader down explicitly and returns the final stats.
    /// (Dropping does the same join without the stats.)
    pub fn finish(mut self) -> LoaderStats {
        let stats = self.stats();
        self.close_and_join();
        stats
    }

    fn close_and_join(&mut self) {
        // Closing every channel unblocks the thread no matter where it
        // sleeps: plans.recv, batches.send (bounded), or recycle.recv.
        self.plan_tx.take();
        self.batch_rx.take();
        self.recycle_tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StreamLoader {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// What the background thread needs from the [`DiskDataset`] (owned, so
/// the loader is not borrow-tied to it).
struct ThreadMeta {
    shape: [usize; 4],
    chunk_samples: usize,
    data_start: u64,
    chunks: Vec<ChunkEntry>,
}

impl ThreadMeta {
    fn row_elems(&self) -> usize {
        self.shape[1] * self.shape[2] * self.shape[3]
    }

    fn chunk_offset(&self, i: usize) -> u64 {
        self.data_start + self.chunks[..i].iter().map(|c| c.bytes as u64).sum::<u64>()
    }
}

/// A small LRU of decoded chunks, keyed by chunk index. Shuffled batch
/// assembly hops between chunks; keeping the last few resident bounds
/// re-reads without pinning the whole file.
struct ChunkCache {
    /// `(chunk_index, last_used_tick, bytes)` per slot.
    slots: Vec<(usize, u64, Vec<u8>)>,
    tick: u64,
    capacity: usize,
}

impl ChunkCache {
    fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// The chunk's bytes, reading (and checksum-validating) on miss.
    fn get(
        &mut self,
        file: &mut File,
        meta: &ThreadMeta,
        chunk: usize,
        counters: &SharedCounters,
    ) -> Result<&[u8], LoaderError> {
        self.tick += 1;
        if let Some(pos) = self.slots.iter().position(|(c, _, _)| *c == chunk) {
            self.slots[pos].1 = self.tick;
            return Ok(&self.slots[pos].2);
        }
        let slot = if self.slots.len() < self.capacity {
            self.slots.push((chunk, self.tick, Vec::new()));
            self.slots.len() - 1
        } else {
            // Evict the least recently used slot, reusing its buffer.
            let (evict, _) = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used, _))| *used)
                .expect("cache has slots");
            self.slots[evict].0 = chunk;
            self.slots[evict].1 = self.tick;
            evict
        };
        let entry = &meta.chunks[chunk];
        let buf = &mut self.slots[slot].2;
        buf.resize(entry.bytes, 0);
        file.seek(SeekFrom::Start(meta.chunk_offset(chunk)))?;
        file.read_exact(buf)?;
        counters
            .bytes_read
            .fetch_add(entry.bytes as u64, Ordering::Relaxed);
        counters.chunk_loads.fetch_add(1, Ordering::Relaxed);
        let actual = fnv1a64(buf);
        if actual != entry.checksum {
            // Poison the slot so a retry re-reads instead of serving the
            // damaged bytes from cache.
            self.slots[slot].0 = usize::MAX;
            return Err(LoaderError::ChunkCorrupt {
                chunk,
                reason: format!(
                    "checksum {actual:016x} does not match index {:016x}",
                    entry.checksum
                ),
            });
        }
        Ok(&self.slots[slot].2)
    }
}

/// The background prefetch loop. Exits when any channel closes (the
/// trainer dropped the loader) or all plans are done and the plan sender
/// is gone. On a batch error it reports once and discards the rest of
/// that epoch, then waits for the next plan.
fn prefetch_thread(
    mut file: File,
    meta: ThreadMeta,
    plans: Receiver<EpochPlan>,
    batches: SyncSender<Result<Batch, LoaderError>>,
    recycle: Receiver<Batch>,
    counters: Arc<SharedCounters>,
    max_bufs: usize,
) {
    let mut cache = ChunkCache::new(CACHE_CHUNKS.min(meta.chunks.len().max(1)));
    let mut created = 0usize;
    while let Ok(plan) = plans.recv() {
        let n = plan.order.len();
        let mut start = plan.skip * plan.batch;
        while start < n {
            let end = (start + plan.batch).min(n);
            // A recycled buffer if one is waiting; fresh only while the
            // ring is still growing toward its fixed size.
            let buf = match recycle.try_recv() {
                Ok(b) => Some(b),
                Err(TryRecvError::Empty) if created < max_bufs => {
                    created += 1;
                    Some(Batch {
                        images: Tensor::uninit(&[0]),
                        labels: Vec::new(),
                    })
                }
                // When the ring is full, block for a recycled buffer;
                // a closed channel means the trainer is gone.
                Err(TryRecvError::Empty) => recycle.recv().ok(),
                Err(TryRecvError::Disconnected) => None,
            };
            let Some(mut buf) = buf else { return };
            let filled = fill_batch(
                &mut buf,
                &plan.order[start..end],
                &meta,
                &mut file,
                &mut cache,
                &counters,
            );
            match filled {
                Ok(()) => {
                    counters.batches_filled.fetch_add(1, Ordering::Relaxed);
                    if batches.send(Ok(buf)).is_err() {
                        return; // trainer gone
                    }
                    start = end;
                }
                Err(e) => {
                    // Report once; the trainer will abort or re-plan.
                    let _ = batches.send(Err(e));
                    break;
                }
            }
        }
    }
}

/// Assembles one batch in place: tensor reshaped (reusing its arena
/// storage when the capacity fits — always, after warm-up), labels
/// cleared and refilled, rows decoded straight from cached chunk bytes.
fn fill_batch(
    buf: &mut Batch,
    idxs: &[usize],
    meta: &ThreadMeta,
    file: &mut File,
    cache: &mut ChunkCache,
    counters: &SharedCounters,
) -> Result<(), LoaderError> {
    let [_, c, h, w] = meta.shape;
    let row = meta.row_elems();
    let shape = [idxs.len(), c, h, w];
    if buf.images.shape() != shape {
        // Dropping the old tensor recycles its storage into the arena;
        // `uninit` takes it straight back when the capacity fits, so this
        // is a pool round-trip, not an allocation, in steady state.
        buf.images = Tensor::uninit(&shape);
    }
    buf.labels.clear();
    let data = buf.images.data_mut();
    for (i, &idx) in idxs.iter().enumerate() {
        let chunk = idx / meta.chunk_samples;
        let within = idx % meta.chunk_samples;
        let bytes = cache.get(file, meta, chunk, counters)?;
        let rec = within * (4 + 4 * row);
        buf.labels.push(decode_label(&bytes[rec..rec + 4]));
        decode_row(
            &bytes[rec + 4..rec + 4 + 4 * row],
            &mut data[i * row..(i + 1) * row],
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbsds-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_open_load_round_trips_bitwise() {
        let dir = scratch("roundtrip");
        let path = dir.join("set.mbsds");
        let set = generate(11, 6, 0.3, 41);
        save_dataset_chunked(&set, &path, 4).unwrap();
        let disk = DiskDataset::open(&path).unwrap();
        assert_eq!(disk.shape(), [11, 3, 6, 6]);
        assert_eq!(disk.num_chunks(), 3); // 4 + 4 + 3
        let loaded = disk.load().unwrap();
        assert_eq!(loaded.labels, set.labels);
        for (a, b) in loaded.images.data().iter().zip(set.images.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generate_to_matches_generate_then_save() {
        let dir = scratch("genmatch");
        let a = dir.join("streamed.mbsds");
        let b = dir.join("memory.mbsds");
        generate_to_chunked(&a, 9, 5, 0.25, 77, 4).unwrap();
        save_dataset_chunked(&generate(9, 5, 0.25, 77), &b, 4).unwrap();
        assert_eq!(
            fs::read(&a).unwrap(),
            fs::read(&b).unwrap(),
            "streamed generator drifted from generate() + save"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_prefix_matches_the_leading_samples() {
        let dir = scratch("prefix");
        let path = dir.join("set.mbsds");
        let set = generate(10, 4, 0.2, 5);
        save_dataset_chunked(&set, &path, 3).unwrap();
        let disk = DiskDataset::open(&path).unwrap();
        let (probe, labels) = disk.read_prefix(7).unwrap();
        assert_eq!(probe.shape(), &[7, 3, 4, 4]);
        assert_eq!(labels, set.labels[..7]);
        let row = 3 * 4 * 4;
        for (a, b) in probe.data().iter().zip(&set.images.data()[..7 * row]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_loader_reproduces_gathered_batches() {
        let dir = scratch("stream");
        let path = dir.join("set.mbsds");
        let set = generate(13, 4, 0.2, 8);
        save_dataset_chunked(&set, &path, 5).unwrap();
        let disk = DiskDataset::open(&path).unwrap();
        let mut loader = StreamLoader::new(&disk, 2).unwrap();
        let order: Vec<usize> = vec![12, 0, 7, 3, 9, 1, 11, 2, 8, 4, 10, 5, 6];
        let row = disk.row_elems();
        for epoch in 0..2 {
            loader.begin_epoch(&order, 4, 0);
            let mut start = 0;
            while start < order.len() {
                let end = (start + 4).min(order.len());
                let batch = loader.next_batch().unwrap();
                assert_eq!(batch.images.shape(), &[end - start, 3, 4, 4]);
                for (i, &idx) in order[start..end].iter().enumerate() {
                    assert_eq!(batch.labels[i], set.labels[idx], "epoch {epoch}");
                    let want = &set.images.data()[idx * row..(idx + 1) * row];
                    let got = &batch.images.data()[i * row..(i + 1) * row];
                    for (a, b) in got.iter().zip(want) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                loader.recycle(batch);
                start = end;
            }
        }
        let stats = loader.finish();
        assert!(stats.batches_filled >= 8);
        assert!(stats.bytes_read > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn skip_resumes_mid_epoch() {
        let dir = scratch("skip");
        let path = dir.join("set.mbsds");
        let set = generate(8, 4, 0.2, 9);
        save_dataset_chunked(&set, &path, 4).unwrap();
        let disk = DiskDataset::open(&path).unwrap();
        let mut loader = StreamLoader::new(&disk, 1).unwrap();
        let order: Vec<usize> = (0..8).rev().collect();
        loader.begin_epoch(&order, 3, 1); // skip the first batch of 3
        let batch = loader.next_batch().unwrap();
        assert_eq!(
            batch.labels,
            vec![set.labels[4], set.labels[3], set.labels[2]]
        );
        loader.recycle(batch);
        let tail = loader.next_batch().unwrap();
        assert_eq!(tail.labels, vec![set.labels[1], set.labels[0]]);
        loader.recycle(tail);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_mid_epoch_joins_the_thread() {
        let dir = scratch("drop");
        let path = dir.join("set.mbsds");
        save_dataset_chunked(&generate(16, 4, 0.2, 10), &path, 4).unwrap();
        let disk = DiskDataset::open(&path).unwrap();
        let mut loader = StreamLoader::new(&disk, 2).unwrap();
        loader.begin_epoch(&(0..16).collect::<Vec<_>>(), 4, 0);
        let batch = loader.next_batch().unwrap();
        // Drop without recycling, mid-epoch, with the queue full: the
        // thread must unblock and join (Drop would hang otherwise).
        drop(loader);
        drop(batch);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_rejects_malformed_datasets() {
        let dir = scratch("badset");
        let path = dir.join("set.mbsds");
        let mut set = generate(4, 4, 0.2, 11);
        set.labels.pop();
        let err = save_dataset_chunked(&set, &path, 2).unwrap_err();
        assert!(matches!(err, LoaderError::Format(msg) if msg.contains("labels")));
        let _ = fs::remove_dir_all(&dir);
    }
}
