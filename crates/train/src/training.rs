//! The real training loops: the Fig. 6 experiment (train the residual CNN
//! with BN, GN+MBS, or no normalization, recording validation error and
//! pre-activation statistics per epoch), and the **schedule-driven**
//! variant [`train_grouped`] — the same epoch loop (shuffling, per-epoch
//! evaluation, stepped learning rate) with every training step executed by
//! a [`GroupedExecutor`] running an `mbs_core` [`Schedule`] over a lowered
//! IR network.

use std::fmt;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use mbs_cnn::Network;
use mbs_core::Schedule;

use crate::checkpoint::{self, CheckpointConfig, CheckpointError, FaultPlan, TrainCheckpoint};
use crate::data::Dataset;
use crate::executor::{evaluate, train_step_full, train_step_mbs};
use crate::grouped::GroupedExecutor;
use crate::loader::{self, DiskDataset, LoaderError, LoaderStats, StreamLoader};
use crate::lower::{lower, LowerError, LoweredNet};
use crate::model::MiniResNet;
use crate::module::{slice_batch, Module, StateDict, StateError};
use crate::norm::NormChoice;
use crate::optim::{step_lr, Sgd};

/// Experiment configuration (a scaled-down Fig. 6: the paper trains
/// ResNet50 on ImageNet for 90 epochs with decays at 30/60/80).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// MBS sub-batch size (`None` = conventional full-batch propagation).
    pub sub_batch: Option<usize>,
    /// Base learning rate (paper Fig. 6 uses 0.05).
    pub base_lr: f32,
    /// Epochs at which the learning rate decays by 10x.
    pub lr_milestones: Vec<usize>,
    /// Momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
    /// Crash-safe checkpointing for [`train_grouped`] (`None` = no
    /// checkpoints). Unset callers inherit the `MBS_CKPT_DIR` /
    /// `MBS_CKPT_EVERY` environment knobs via
    /// [`CheckpointConfig::from_env`] — pass `Some` to override.
    pub checkpoint: Option<CheckpointConfig>,
    /// Per-run override of the grouped backward strategy: `Some(true)`
    /// forces cache stashing, `Some(false)` forces replay, `None` uses
    /// the process-wide `MBS_STASH` knob. Ignored by [`train`].
    pub stashing: Option<bool>,
    /// Test-only fault-injection plan for checkpoint saves (`None` in
    /// real runs). See [`FaultPlan`].
    pub fault_plan: Option<FaultPlan>,
    /// Prefetch depth for streamed sources (`None` = the
    /// `MBS_LOADER_PREFETCH` knob, default 2; `1` is the degenerate
    /// near-synchronous mode CI pins). Ignored for in-memory sources —
    /// the prefetch depth never changes *what* is trained, only whether
    /// the step loop waits on disk.
    pub prefetch: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch: 16,
            sub_batch: None,
            base_lr: 0.05,
            lr_milestones: vec![15, 25],
            momentum: 0.9,
            weight_decay: 1e-4,
            blocks_per_stage: 1,
            seed: 1234,
            checkpoint: None,
            stashing: None,
            fault_plan: None,
            prefetch: None,
        }
    }
}

/// Where [`train_grouped_source`] reads training samples from. The
/// validation split stays in memory either way (it is read once per
/// epoch, sequentially — nothing to stream).
#[derive(Debug)]
pub enum DataSource {
    /// A fully materialized in-memory dataset (the classic path).
    Memory(Dataset),
    /// A `*.mbsds` file streamed through a background-prefetch
    /// [`StreamLoader`] — bitwise-equivalent to loading the same file
    /// into memory and training on it, across every prefetch depth
    /// (pinned by `tests/loader_equivalence.rs`).
    Stream(PathBuf),
}

impl From<Dataset> for DataSource {
    fn from(set: Dataset) -> Self {
        Self::Memory(set)
    }
}

impl From<PathBuf> for DataSource {
    fn from(path: PathBuf) -> Self {
        Self::Stream(path)
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Validation top-1 error in percent.
    pub val_error_pct: f64,
    /// Mean output of the first normalization layer (pre-activation).
    pub preact_first: f32,
    /// Mean output of the last normalization layer.
    pub preact_last: f32,
}

/// Why [`train_grouped`] could not run (or finish) a training job.
#[derive(Debug)]
pub enum TrainError {
    /// Lowering rejected the network geometry.
    Lower(LowerError),
    /// A dataset split's images do not match the network input shape.
    DatasetMismatch {
        /// Network name.
        net: String,
        /// Which split mismatched (`"train"` or `"validation"`).
        split: &'static str,
        /// Per-sample shape the network expects (channels, height, width).
        expected: [usize; 3],
        /// Image tensor shape the split actually carries.
        found: Vec<usize>,
    },
    /// A dataset split has a different number of images and labels.
    LabelMismatch {
        /// Which split mismatched (`"train"` or `"validation"`).
        split: &'static str,
        /// Number of images in the split.
        images: usize,
        /// Number of labels in the split.
        labels: usize,
    },
    /// The schedule covers a different node count than the network.
    ScheduleMismatch {
        /// Network name.
        net: String,
        /// Nodes the schedule's groups cover.
        schedule_nodes: usize,
        /// Nodes the network actually has.
        net_nodes: usize,
        /// Name of the first network node the schedule leaves uncovered
        /// (`None` when the schedule covers *too many* nodes).
        first_uncovered: Option<String>,
    },
    /// Saving or loading a checkpoint failed.
    Checkpoint(CheckpointError),
    /// Opening or streaming the on-disk training set failed (bad file,
    /// chunk corruption, I/O error). See [`LoaderError`].
    Loader(LoaderError),
    /// A resumed checkpoint's state did not fit the lowered model —
    /// format drift the fingerprint could not catch.
    State(StateError),
    /// The run was deterministically killed by the configured
    /// [`FaultPlan`] after completing this many checkpoint saves
    /// (test harness only; real crashes do not produce an error value).
    Killed {
        /// Checkpoint saves completed before the kill.
        saves: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lower(e) => write!(f, "lowering failed: {e}"),
            Self::DatasetMismatch {
                net,
                split,
                expected,
                found,
            } => write!(
                f,
                "{split} images have shape {found:?} but net {net:?} expects \
                 [N, {}, {}, {}]",
                expected[0], expected[1], expected[2]
            ),
            Self::LabelMismatch {
                split,
                images,
                labels,
            } => write!(f, "{split} split has {images} images but {labels} labels"),
            Self::ScheduleMismatch {
                net,
                schedule_nodes,
                net_nodes,
                first_uncovered,
            } => {
                write!(
                    f,
                    "schedule covers {schedule_nodes} nodes but net {net:?} has {net_nodes}"
                )?;
                if let Some(name) = first_uncovered {
                    write!(f, " (first uncovered node: {name:?})")?;
                }
                Ok(())
            }
            Self::Checkpoint(e) => write!(f, "checkpointing failed: {e}"),
            Self::Loader(e) => write!(f, "streaming the training set failed: {e}"),
            Self::State(e) => write!(f, "resumed state does not fit the model: {e}"),
            Self::Killed { saves } => {
                write!(f, "run killed by fault plan after {saves} checkpoint saves")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Lower(e) => Some(e),
            Self::Checkpoint(e) => Some(e),
            Self::Loader(e) => Some(e),
            Self::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LowerError> for TrainError {
    fn from(e: LowerError) -> Self {
        Self::Lower(e)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<StateError> for TrainError {
    fn from(e: StateError) -> Self {
        Self::State(e)
    }
}

impl From<LoaderError> for TrainError {
    fn from(e: LoaderError) -> Self {
        Self::Loader(e)
    }
}

/// Trains a [`MiniResNet`] with the given normalization and returns the
/// per-epoch curve (the series plotted in Fig. 6).
pub fn train(
    norm: NormChoice,
    train_set: &Dataset,
    val_set: &Dataset,
    cfg: &TrainConfig,
) -> Vec<EpochStats> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = MiniResNet::new(3, 4, cfg.blocks_per_stage, norm, &mut rng);
    let mut opt = Sgd::new(cfg.base_lr, cfg.momentum, cfg.weight_decay);
    let n = train_set.len();
    let probe = slice_batch(&train_set.images, 0, train_set.len().min(8));
    let mut order: Vec<usize> = (0..n).collect();
    let mut curve = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        opt.lr = step_lr(cfg.base_lr, 0.1, &cfg.lr_milestones, epoch);
        reshuffle(&mut order, &mut rng);
        let mut loss_sum = 0.0f32;
        let mut steps = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch).min(n);
            let (xs, ls) = gather(train_set, &order[start..end]);
            let loss = match cfg.sub_batch {
                Some(sub) => train_step_mbs(&mut model, &xs, &ls, sub, &mut opt),
                None => train_step_full(&mut model, &xs, &ls, &mut opt),
            };
            loss_sum += loss;
            steps += 1;
            start = end;
        }
        let (_, err) = evaluate(&mut model, &val_set.images, &val_set.labels, cfg.batch);
        let (first, last) = model.preactivation_means(&probe);
        curve.push(EpochStats {
            epoch,
            train_loss: loss_sum / steps.max(1) as f32,
            val_error_pct: err,
            preact_first: first,
            preact_last: last,
        });
    }
    curve
}

/// Trains a network **as the scheduler planned it**: `net` is lowered to a
/// runnable model and every training step runs through a
/// [`GroupedExecutor`] executing `schedule` — per-group sub-batch sizes,
/// boundary staging, cache-stashing backward (or replay under
/// `MBS_STASH=0`). The epoch loop is the same as [`train`]'s: per-epoch
/// shuffling (seeded by `cfg.seed`), stepped learning rate
/// (`cfg.lr_milestones`), and per-epoch validation; `cfg.sub_batch` is
/// ignored because the schedule carries the serialization plan.
///
/// The pre-activation probes of the returned [`EpochStats`] report the
/// mean output of the first and last *top-level* normalization nodes
/// (`0.0` if the network has none) — the lowered-net analogue of the
/// Fig. 6 diagnostic.
///
/// # Crash safety
///
/// With `cfg.checkpoint` set (or `MBS_CKPT_DIR` in the environment), the
/// run saves durable checkpoints — always at epoch boundaries, plus
/// every [`CheckpointConfig::every_steps`] steps — and resumes from the
/// newest valid one on restart. **Guarantee:** a run killed at any point
/// and resumed from its checkpoint directory produces the same epoch
/// curve as the unkilled run — bitwise, because the checkpoint restores
/// the exact shuffle-RNG state alongside parameters, running statistics,
/// and momentum. The equivalence is pinned by the kill/resume matrix in
/// `tests/checkpoint_resume.rs` across both backward strategies.
///
/// # Errors
///
/// Returns a structured [`TrainError`] when the inputs disagree before
/// any training happens — dataset shape or label-count mismatches,
/// a schedule whose groups do not cover the network (naming the first
/// uncovered node), or a geometry lowering rejects — and when
/// checkpointing fails or a resumed checkpoint does not fit.
///
/// # Examples
///
/// ```
/// use mbs_cnn::networks::toy;
/// use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
/// use mbs_train::data::generate;
/// use mbs_train::training::{train_grouped, TrainConfig, TrainError};
///
/// fn main() -> Result<(), TrainError> {
///     let net = toy::runtime_mix(8, 8);
///     let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
///     let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
///     let train_set = generate(16, 8, 0.3, 1);
///     let val_set = generate(8, 8, 0.3, 2);
///     let cfg = TrainConfig { epochs: 1, batch: 8, ..TrainConfig::default() };
///     let curve = train_grouped(&net, &schedule, &train_set, &val_set, &cfg)?;
///     assert_eq!(curve.len(), 1);
///     Ok(())
/// }
/// ```
pub fn train_grouped(
    net: &Network,
    schedule: &Schedule,
    train_set: &Dataset,
    val_set: &Dataset,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>, TrainError> {
    run_grouped(net, schedule, Feed::Memory(train_set), val_set, cfg).map(|(curve, _)| curve)
}

/// [`train_grouped`] over a [`DataSource`]: identical semantics whether
/// the training set is in memory or streamed off disk. The streamed path
/// shuffles with the *same* trainer-side RNG calls as the in-memory one
/// (the loader thread only materializes the order it is handed), so loss
/// curves, final parameters, and checkpoint kill/resume are **bitwise**
/// unchanged across sources and prefetch depths — pinned by
/// `tests/loader_equivalence.rs`.
///
/// # Errors
///
/// Everything [`train_grouped`] returns, plus [`TrainError::Loader`]
/// when the `*.mbsds` file cannot be opened or a chunk fails its
/// checksum mid-stream. On any error the loader thread is joined before
/// returning — a failed run leaks neither the thread nor its buffers.
///
/// # Examples
///
/// ```
/// use mbs_cnn::networks::toy;
/// use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
/// use mbs_train::loader::generate_to;
/// use mbs_train::training::{train_grouped_source, DataSource, TrainConfig, TrainError};
///
/// fn main() -> Result<(), TrainError> {
///     let dir = std::env::temp_dir().join("mbsds-doc-train");
///     let path = dir.join("train.mbsds");
///     generate_to(&path, 16, 8, 0.3, 1)?;
///     let net = toy::runtime_mix(8, 8);
///     let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
///     let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
///     let val_set = mbs_train::data::generate(8, 8, 0.3, 2);
///     let cfg = TrainConfig { epochs: 1, batch: 8, ..TrainConfig::default() };
///     let curve = train_grouped_source(&net, &schedule, &DataSource::Stream(path), &val_set, &cfg)?;
///     assert_eq!(curve.len(), 1);
///     # let _ = std::fs::remove_dir_all(&dir);
///     Ok(())
/// }
/// ```
pub fn train_grouped_source(
    net: &Network,
    schedule: &Schedule,
    source: &DataSource,
    val_set: &Dataset,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>, TrainError> {
    train_grouped_source_with_stats(net, schedule, source, val_set, cfg).map(|(curve, _)| curve)
}

/// [`train_grouped_source`] that also returns the loader's counters
/// (`None` for in-memory sources) — what the bench bin reports as the
/// `loader` section: prefetch stalls, bytes off disk, chunk reads.
///
/// # Errors
///
/// Same as [`train_grouped_source`].
pub fn train_grouped_source_with_stats(
    net: &Network,
    schedule: &Schedule,
    source: &DataSource,
    val_set: &Dataset,
    cfg: &TrainConfig,
) -> Result<(Vec<EpochStats>, Option<LoaderStats>), TrainError> {
    let feed = match source {
        DataSource::Memory(set) => Feed::Memory(set),
        DataSource::Stream(path) => {
            let disk = DiskDataset::open(path)?;
            let prefetch = cfg.prefetch.unwrap_or_else(loader::prefetch_from_env);
            let loader = StreamLoader::new(&disk, prefetch)?;
            Feed::Stream { disk, loader }
        }
    };
    run_grouped(net, schedule, feed, val_set, cfg)
}

/// The training set as the epoch loop sees it. The two arms must stay
/// observably identical per step — same batch bits, same trainer-side
/// RNG consumption — or the streamed/in-memory bitwise contract breaks.
enum Feed<'a> {
    Memory(&'a Dataset),
    Stream {
        disk: DiskDataset,
        loader: StreamLoader,
    },
}

impl Feed<'_> {
    fn len(&self) -> usize {
        match self {
            Self::Memory(set) => set.len(),
            Self::Stream { disk, .. } => disk.len(),
        }
    }

    fn image_shape(&self) -> Vec<usize> {
        match self {
            Self::Memory(set) => set.images.shape().to_vec(),
            Self::Stream { disk, .. } => disk.shape().to_vec(),
        }
    }

    fn label_count(&self) -> usize {
        match self {
            Self::Memory(set) => set.labels.len(),
            // The format stores exactly one label per record.
            Self::Stream { disk, .. } => disk.len(),
        }
    }

    /// The pre-activation probe batch: the first `k` samples, bitwise
    /// identical across arms (disk round trips are bitwise).
    fn probe(&self, k: usize) -> Result<mbs_tensor::Tensor, TrainError> {
        match self {
            Self::Memory(set) => Ok(slice_batch(&set.images, 0, k)),
            Self::Stream { disk, .. } => Ok(disk.read_prefix(k)?.0),
        }
    }

    /// Announces the epoch's shuffled order so the prefetch thread can
    /// run ahead. No-op for in-memory feeds.
    fn begin_epoch(&mut self, order: &[usize], batch: usize, skip: usize) {
        if let Self::Stream { loader, .. } = self {
            loader.begin_epoch(order, batch, skip);
        }
    }

    fn stats(&self) -> Option<LoaderStats> {
        match self {
            Self::Memory(_) => None,
            Self::Stream { loader, .. } => Some(loader.stats()),
        }
    }
}

fn run_grouped(
    net: &Network,
    schedule: &Schedule,
    mut feed: Feed<'_>,
    val_set: &Dataset,
    cfg: &TrainConfig,
) -> Result<(Vec<EpochStats>, Option<LoaderStats>), TrainError> {
    validate_inputs(net, schedule, &feed, val_set)?;
    let ckpt_cfg = cfg.checkpoint.clone().or_else(CheckpointConfig::from_env);
    let fingerprint = schedule.fingerprint(net);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = lower(net, &mut rng)?;
    let mut exec = GroupedExecutor::new(schedule, model.len());
    if let Some(stashing) = cfg.stashing {
        exec.set_stashing(stashing);
    }
    let mut opt = Sgd::new(cfg.base_lr, cfg.momentum, cfg.weight_decay);
    let n = feed.len();
    let probe = feed.probe(n.min(8))?;
    let mut order: Vec<usize> = (0..n).collect();
    let mut curve = Vec::with_capacity(cfg.epochs);

    // Resume bookkeeping: where to continue, how much of the first epoch
    // is already done, and the next checkpoint sequence number (always
    // past every file already in the directory, even corrupt ones).
    let mut start_epoch = 0usize;
    let mut resumed_steps = 0usize;
    let mut resumed_loss_sum = 0.0f32;
    let mut seq = 0usize;
    let mut saves = 0usize;
    if let Some(ck) = &ckpt_cfg {
        seq = checkpoint::list(&ck.dir)?.last().map_or(0, |&(s, _)| s + 1);
        if ck.resume {
            let (found, report) = checkpoint::load_latest(&ck.dir, fingerprint)?;
            if !report.is_clean() {
                eprintln!("warning: resume in {}: {report}", ck.dir.display());
            }
            if let Some((_, loaded)) = found {
                restore(&loaded, &mut model, &mut opt, &mut rng)?;
                start_epoch = loaded.epoch;
                resumed_steps = loaded.step_in_epoch;
                resumed_loss_sum = loaded.loss_sum;
                curve = loaded.curve;
            }
        }
    }

    for epoch in start_epoch..cfg.epochs {
        // Shuffle-RNG state at the top of the epoch: a mid-epoch
        // checkpoint stores it so the resumed run replays the same
        // permutation and skips the completed prefix.
        let epoch_rng = rng.state();
        opt.lr = step_lr(cfg.base_lr, 0.1, &cfg.lr_milestones, epoch);
        reshuffle(&mut order, &mut rng);
        let skip = if epoch == start_epoch {
            resumed_steps
        } else {
            0
        };
        let mut loss_sum = if epoch == start_epoch {
            resumed_loss_sum
        } else {
            0.0
        };
        feed.begin_epoch(&order, cfg.batch, skip);
        let mut steps = skip;
        let mut start = skip * cfg.batch;
        while start < n {
            let end = (start + cfg.batch).min(n);
            loss_sum += match &mut feed {
                Feed::Memory(set) => {
                    let (xs, ls) = gather(set, &order[start..end]);
                    exec.train_step(&mut model, &xs, &ls, &mut opt)
                }
                Feed::Stream { loader, .. } => {
                    let batch = loader.next_batch()?;
                    let loss = exec.train_step(&mut model, &batch.images, &batch.labels, &mut opt);
                    loader.recycle(batch);
                    loss
                }
            };
            steps += 1;
            start = end;
            if let Some(ck) = &ckpt_cfg {
                if ck.every_steps > 0 && steps % ck.every_steps == 0 && start < n {
                    let snapshot = snapshot(
                        fingerprint,
                        net.name(),
                        epoch,
                        steps,
                        loss_sum,
                        epoch_rng,
                        &mut model,
                        &opt,
                        &curve,
                    );
                    persist(ck, cfg.fault_plan.as_ref(), &mut seq, &mut saves, &snapshot)?;
                }
            }
        }
        let (_, err) = evaluate(&mut model, &val_set.images, &val_set.labels, cfg.batch);
        let (first, last) = model.preactivation_means(&probe);
        curve.push(EpochStats {
            epoch,
            train_loss: loss_sum / steps.max(1) as f32,
            val_error_pct: err,
            preact_first: first,
            preact_last: last,
        });
        if let Some(ck) = &ckpt_cfg {
            // Epoch-boundary save: cursor at the top of the next epoch.
            let snapshot = snapshot(
                fingerprint,
                net.name(),
                epoch + 1,
                0,
                0.0,
                rng.state(),
                &mut model,
                &opt,
                &curve,
            );
            persist(ck, cfg.fault_plan.as_ref(), &mut seq, &mut saves, &snapshot)?;
        }
    }
    Ok((curve, feed.stats()))
}

/// Rejects input disagreements up front with named-network errors, so the
/// executor's internal panics never fire on user mistakes.
fn validate_inputs(
    net: &Network,
    schedule: &Schedule,
    feed: &Feed<'_>,
    val_set: &Dataset,
) -> Result<(), TrainError> {
    let covered = schedule.node_count();
    let nodes = net.nodes().len();
    if covered != nodes {
        return Err(TrainError::ScheduleMismatch {
            net: net.name().to_string(),
            schedule_nodes: covered,
            net_nodes: nodes,
            first_uncovered: net.nodes().get(covered).map(|n| n.name().to_string()),
        });
    }
    let input = net.input();
    let expected = [input.channels, input.height, input.width];
    let splits = [
        ("train", feed.image_shape(), feed.label_count()),
        (
            "validation",
            val_set.images.shape().to_vec(),
            val_set.labels.len(),
        ),
    ];
    for (split, shape, labels) in splits {
        if shape.len() != 4 || shape[1..] != expected {
            return Err(TrainError::DatasetMismatch {
                net: net.name().to_string(),
                split,
                expected,
                found: shape,
            });
        }
        if labels != shape[0] {
            return Err(TrainError::LabelMismatch {
                split,
                images: shape[0],
                labels,
            });
        }
    }
    Ok(())
}

/// Captures the full resumable state as a [`TrainCheckpoint`].
#[allow(clippy::too_many_arguments)]
fn snapshot(
    fingerprint: u64,
    net: &str,
    epoch: usize,
    step_in_epoch: usize,
    loss_sum: f32,
    rng_state: [u64; 4],
    model: &mut LoweredNet,
    opt: &Sgd,
    curve: &[EpochStats],
) -> TrainCheckpoint {
    let mut dict = StateDict::default();
    model.export_state(&mut dict);
    let mut vdict = StateDict::default();
    opt.export_state(&mut vdict);
    TrainCheckpoint {
        fingerprint,
        net: net.to_string(),
        epoch,
        step_in_epoch,
        loss_sum,
        steps: step_in_epoch,
        rng: rng_state.to_vec(),
        model: dict.into_entries(),
        velocities: vdict.into_entries(),
        curve: curve.to_vec(),
    }
}

/// Saves `ckpt` (through the fault plan when one is configured) and
/// enforces the plan's deterministic kill point.
fn persist(
    ck: &CheckpointConfig,
    plan: Option<&FaultPlan>,
    seq: &mut usize,
    saves: &mut usize,
    ckpt: &TrainCheckpoint,
) -> Result<(), TrainError> {
    match plan {
        Some(plan) => plan.apply(*saves, &ck.dir, *seq, ckpt, ck.keep)?,
        None => {
            checkpoint::save(&ck.dir, *seq, ckpt, ck.keep)?;
        }
    }
    *seq += 1;
    *saves += 1;
    if plan.is_some_and(|p| p.should_kill(*saves)) {
        return Err(TrainError::Killed { saves: *saves });
    }
    Ok(())
}

/// Imports a loaded checkpoint into the freshly lowered model, the
/// optimizer, and the shuffle RNG.
fn restore(
    loaded: &TrainCheckpoint,
    model: &mut LoweredNet,
    opt: &mut Sgd,
    rng: &mut StdRng,
) -> Result<(), TrainError> {
    let mut dict = StateDict::from_entries(loaded.model.clone());
    model.import_state(&mut dict)?;
    if !dict.is_empty() {
        return Err(TrainError::State(StateError::Leftover {
            remaining: dict.len(),
        }));
    }
    let mut vdict = StateDict::from_entries(loaded.velocities.clone());
    opt.import_state(&mut vdict)?;
    let words: [u64; 4] = loaded.rng.as_slice().try_into().map_err(|_| {
        TrainError::Checkpoint(CheckpointError::Format(format!(
            "RNG state has {} words (want 4)",
            loaded.rng.len()
        )))
    })?;
    *rng = StdRng::from_state(words);
    Ok(())
}

/// Re-deals the identity permutation and shuffles it. Starting from the
/// identity every epoch (instead of shuffling the previous epoch's order
/// in place) makes an epoch's batch composition a function of the RNG
/// state at its start alone — the property checkpoint resume relies on
/// to skip completed epochs without replaying their shuffles.
fn reshuffle(order: &mut [usize], rng: &mut StdRng) {
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i;
    }
    order.shuffle(rng);
}

fn gather(set: &Dataset, idx: &[usize]) -> (mbs_tensor::Tensor, Vec<usize>) {
    let mut shape = set.images.shape().to_vec();
    shape[0] = idx.len();
    let row = set.images.len() / set.len().max(1);
    let mut data = Vec::with_capacity(idx.len() * row);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(&set.images.data()[i * row..(i + 1) * row]);
        labels.push(set.labels[i]);
    }
    (mbs_tensor::Tensor::from_vec(&shape, data), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;

    #[test]
    fn short_training_learns_the_synthetic_task() {
        let train_set = generate(96, 8, 0.25, 31);
        let val_set = generate(48, 8, 0.25, 32);
        let cfg = TrainConfig {
            epochs: 8,
            batch: 16,
            sub_batch: Some(4),
            lr_milestones: vec![6],
            ..TrainConfig::default()
        };
        let curve = train(NormChoice::Group(4), &train_set, &val_set, &cfg);
        assert_eq!(curve.len(), 8);
        let first = curve.first().unwrap().val_error_pct;
        let last = curve.last().unwrap().val_error_pct;
        assert!(
            last < first.max(50.0),
            "validation error should improve: {first} -> {last}"
        );
        // Chance level is 75% error; the model must beat it clearly.
        assert!(last < 55.0, "final error {last}");
    }

    #[test]
    fn grouped_training_learns_the_synthetic_task() {
        use mbs_cnn::networks::toy;
        use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};

        let net = toy::runtime_mix(8, 16);
        // A small budget forces a genuinely multi-group schedule.
        let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
            .with_batch(16)
            .schedule();
        assert!(schedule.groups().len() >= 2, "want a multi-group plan");
        let train_set = generate(96, 8, 0.25, 35);
        let val_set = generate(48, 8, 0.25, 36);
        let cfg = TrainConfig {
            epochs: 8,
            batch: 16,
            lr_milestones: vec![6],
            ..TrainConfig::default()
        };
        let curve = train_grouped(&net, &schedule, &train_set, &val_set, &cfg).unwrap();
        assert_eq!(curve.len(), 8);
        let first = curve.first().unwrap().val_error_pct;
        let last = curve.last().unwrap().val_error_pct;
        assert!(
            last < first.max(50.0),
            "validation error should improve: {first} -> {last}"
        );
        assert!(last < 55.0, "final error {last}");
        // runtime_mix has top-level GN nodes, so the probes are live.
        assert!(curve.iter().all(|e| e.preact_first != 0.0));
    }

    #[test]
    fn grouped_curves_are_deterministic_given_seed() {
        use mbs_cnn::networks::toy;
        use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};

        let net = toy::runtime_mix(8, 8);
        let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
        let train_set = generate(24, 8, 0.25, 37);
        let val_set = generate(16, 8, 0.25, 38);
        let cfg = TrainConfig {
            epochs: 2,
            batch: 8,
            ..TrainConfig::default()
        };
        let a = train_grouped(&net, &schedule, &train_set, &val_set, &cfg).unwrap();
        let b = train_grouped(&net, &schedule, &train_set, &val_set, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn curves_are_deterministic_given_seed() {
        let train_set = generate(32, 8, 0.25, 33);
        let val_set = generate(16, 8, 0.25, 34);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let a = train(NormChoice::Group(4), &train_set, &val_set, &cfg);
        let b = train(NormChoice::Group(4), &train_set, &val_set, &cfg);
        assert_eq!(a, b);
    }
}
