//! The real training loops: the Fig. 6 experiment (train the residual CNN
//! with BN, GN+MBS, or no normalization, recording validation error and
//! pre-activation statistics per epoch), and the **schedule-driven**
//! variant [`train_grouped`] — the same epoch loop (shuffling, per-epoch
//! evaluation, stepped learning rate) with every training step executed by
//! a [`GroupedExecutor`] running an `mbs_core` [`Schedule`] over a lowered
//! IR network.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use mbs_cnn::Network;
use mbs_core::Schedule;

use crate::data::Dataset;
use crate::executor::{evaluate, train_step_full, train_step_mbs};
use crate::grouped::GroupedExecutor;
use crate::lower::{lower, LowerError};
use crate::model::MiniResNet;
use crate::module::slice_batch;
use crate::norm::NormChoice;
use crate::optim::{step_lr, Sgd};

/// Experiment configuration (a scaled-down Fig. 6: the paper trains
/// ResNet50 on ImageNet for 90 epochs with decays at 30/60/80).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// MBS sub-batch size (`None` = conventional full-batch propagation).
    pub sub_batch: Option<usize>,
    /// Base learning rate (paper Fig. 6 uses 0.05).
    pub base_lr: f32,
    /// Epochs at which the learning rate decays by 10x.
    pub lr_milestones: Vec<usize>,
    /// Momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch: 16,
            sub_batch: None,
            base_lr: 0.05,
            lr_milestones: vec![15, 25],
            momentum: 0.9,
            weight_decay: 1e-4,
            blocks_per_stage: 1,
            seed: 1234,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Validation top-1 error in percent.
    pub val_error_pct: f64,
    /// Mean output of the first normalization layer (pre-activation).
    pub preact_first: f32,
    /// Mean output of the last normalization layer.
    pub preact_last: f32,
}

/// Trains a [`MiniResNet`] with the given normalization and returns the
/// per-epoch curve (the series plotted in Fig. 6).
pub fn train(
    norm: NormChoice,
    train_set: &Dataset,
    val_set: &Dataset,
    cfg: &TrainConfig,
) -> Vec<EpochStats> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = MiniResNet::new(3, 4, cfg.blocks_per_stage, norm, &mut rng);
    let mut opt = Sgd::new(cfg.base_lr, cfg.momentum, cfg.weight_decay);
    let n = train_set.len();
    let probe = slice_batch(&train_set.images, 0, train_set.len().min(8));
    let mut order: Vec<usize> = (0..n).collect();
    let mut curve = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        opt.lr = step_lr(cfg.base_lr, 0.1, &cfg.lr_milestones, epoch);
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut steps = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch).min(n);
            let (xs, ls) = gather(train_set, &order[start..end]);
            let loss = match cfg.sub_batch {
                Some(sub) => train_step_mbs(&mut model, &xs, &ls, sub, &mut opt),
                None => train_step_full(&mut model, &xs, &ls, &mut opt),
            };
            loss_sum += loss;
            steps += 1;
            start = end;
        }
        let (_, err) = evaluate(&mut model, &val_set.images, &val_set.labels, cfg.batch);
        let (first, last) = model.preactivation_means(&probe);
        curve.push(EpochStats {
            epoch,
            train_loss: loss_sum / steps.max(1) as f32,
            val_error_pct: err,
            preact_first: first,
            preact_last: last,
        });
    }
    curve
}

/// Trains a network **as the scheduler planned it**: `net` is lowered to a
/// runnable model and every training step runs through a
/// [`GroupedExecutor`] executing `schedule` — per-group sub-batch sizes,
/// boundary staging, cache-stashing backward (or replay under
/// `MBS_STASH=0`). The epoch loop is the same as [`train`]'s: per-epoch
/// shuffling (seeded by `cfg.seed`), stepped learning rate
/// (`cfg.lr_milestones`), and per-epoch validation; `cfg.sub_batch` is
/// ignored because the schedule carries the serialization plan.
///
/// The pre-activation probes of the returned [`EpochStats`] report the
/// mean output of the first and last *top-level* normalization nodes
/// (`0.0` if the network has none) — the lowered-net analogue of the
/// Fig. 6 diagnostic.
///
/// # Errors
///
/// Returns a [`LowerError`] if `net` uses a geometry the runtime rejects.
///
/// # Panics
///
/// Panics if the schedule does not cover `net`'s node count.
///
/// # Examples
///
/// ```
/// use mbs_cnn::networks::toy;
/// use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
/// use mbs_train::data::generate;
/// use mbs_train::training::{train_grouped, TrainConfig};
///
/// let net = toy::runtime_mix(8, 8);
/// let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
/// let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
/// let train_set = generate(16, 8, 0.3, 1);
/// let val_set = generate(8, 8, 0.3, 2);
/// let cfg = TrainConfig { epochs: 1, batch: 8, ..TrainConfig::default() };
/// let curve = train_grouped(&net, &schedule, &train_set, &val_set, &cfg).unwrap();
/// assert_eq!(curve.len(), 1);
/// ```
pub fn train_grouped(
    net: &Network,
    schedule: &Schedule,
    train_set: &Dataset,
    val_set: &Dataset,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>, LowerError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = lower(net, &mut rng)?;
    let mut exec = GroupedExecutor::new(schedule, model.len());
    let mut opt = Sgd::new(cfg.base_lr, cfg.momentum, cfg.weight_decay);
    let n = train_set.len();
    let probe = slice_batch(&train_set.images, 0, train_set.len().min(8));
    let mut order: Vec<usize> = (0..n).collect();
    let mut curve = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        opt.lr = step_lr(cfg.base_lr, 0.1, &cfg.lr_milestones, epoch);
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut steps = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch).min(n);
            let (xs, ls) = gather(train_set, &order[start..end]);
            loss_sum += exec.train_step(&mut model, &xs, &ls, &mut opt);
            steps += 1;
            start = end;
        }
        let (_, err) = evaluate(&mut model, &val_set.images, &val_set.labels, cfg.batch);
        let (first, last) = model.preactivation_means(&probe);
        curve.push(EpochStats {
            epoch,
            train_loss: loss_sum / steps.max(1) as f32,
            val_error_pct: err,
            preact_first: first,
            preact_last: last,
        });
    }
    Ok(curve)
}

fn gather(set: &Dataset, idx: &[usize]) -> (mbs_tensor::Tensor, Vec<usize>) {
    let mut shape = set.images.shape().to_vec();
    shape[0] = idx.len();
    let row = set.images.len() / set.len().max(1);
    let mut data = Vec::with_capacity(idx.len() * row);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(&set.images.data()[i * row..(i + 1) * row]);
        labels.push(set.labels[i]);
    }
    (mbs_tensor::Tensor::from_vec(&shape, data), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;

    #[test]
    fn short_training_learns_the_synthetic_task() {
        let train_set = generate(96, 8, 0.25, 31);
        let val_set = generate(48, 8, 0.25, 32);
        let cfg = TrainConfig {
            epochs: 8,
            batch: 16,
            sub_batch: Some(4),
            lr_milestones: vec![6],
            ..TrainConfig::default()
        };
        let curve = train(NormChoice::Group(4), &train_set, &val_set, &cfg);
        assert_eq!(curve.len(), 8);
        let first = curve.first().unwrap().val_error_pct;
        let last = curve.last().unwrap().val_error_pct;
        assert!(
            last < first.max(50.0),
            "validation error should improve: {first} -> {last}"
        );
        // Chance level is 75% error; the model must beat it clearly.
        assert!(last < 55.0, "final error {last}");
    }

    #[test]
    fn grouped_training_learns_the_synthetic_task() {
        use mbs_cnn::networks::toy;
        use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};

        let net = toy::runtime_mix(8, 16);
        // A small budget forces a genuinely multi-group schedule.
        let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
            .with_batch(16)
            .schedule();
        assert!(schedule.groups().len() >= 2, "want a multi-group plan");
        let train_set = generate(96, 8, 0.25, 35);
        let val_set = generate(48, 8, 0.25, 36);
        let cfg = TrainConfig {
            epochs: 8,
            batch: 16,
            lr_milestones: vec![6],
            ..TrainConfig::default()
        };
        let curve = train_grouped(&net, &schedule, &train_set, &val_set, &cfg).unwrap();
        assert_eq!(curve.len(), 8);
        let first = curve.first().unwrap().val_error_pct;
        let last = curve.last().unwrap().val_error_pct;
        assert!(
            last < first.max(50.0),
            "validation error should improve: {first} -> {last}"
        );
        assert!(last < 55.0, "final error {last}");
        // runtime_mix has top-level GN nodes, so the probes are live.
        assert!(curve.iter().all(|e| e.preact_first != 0.0));
    }

    #[test]
    fn grouped_curves_are_deterministic_given_seed() {
        use mbs_cnn::networks::toy;
        use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};

        let net = toy::runtime_mix(8, 8);
        let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
        let train_set = generate(24, 8, 0.25, 37);
        let val_set = generate(16, 8, 0.25, 38);
        let cfg = TrainConfig {
            epochs: 2,
            batch: 8,
            ..TrainConfig::default()
        };
        let a = train_grouped(&net, &schedule, &train_set, &val_set, &cfg).unwrap();
        let b = train_grouped(&net, &schedule, &train_set, &val_set, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn curves_are_deterministic_given_seed() {
        let train_set = generate(32, 8, 0.25, 33);
        let val_set = generate(16, 8, 0.25, 34);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let a = train(NormChoice::Group(4), &train_set, &val_set, &cfg);
        let b = train(NormChoice::Group(4), &train_set, &val_set, &cfg);
        assert_eq!(a, b);
    }
}
