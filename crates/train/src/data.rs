//! Seeded synthetic image-classification dataset.
//!
//! Substitute for ImageNet in the Fig. 6 reproduction (see DESIGN.md): four
//! texture classes — horizontal stripes, vertical stripes, checkerboard,
//! diagonal waves — with randomized frequency, phase, per-channel gain, and
//! additive Gaussian noise. Hard enough that an un-normalized network
//! struggles, easy enough to train on a CPU in seconds.

#![allow(clippy::needless_range_loop)] // indexed loops address multiple planes

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mbs_tensor::Tensor;

/// Number of texture classes.
pub const CLASSES: usize = 4;

/// A labeled image set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images `[n, 3, size, size]`.
    pub images: Tensor,
    /// One label in `0..CLASSES` per image.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Generates `n` samples of `size × size` images with the given noise
/// standard deviation. Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// let d = mbs_train::data::generate(16, 12, 0.3, 7);
/// assert_eq!(d.images.shape(), &[16, 3, 12, 12]);
/// assert_eq!(d.labels.len(), 16);
/// ```
pub fn generate(n: usize, size: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Tensor::zeros(&[n, 3, size, size]);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..CLASSES);
        labels.push(class);
        let freq = rng.gen_range(1.0f32..3.0);
        let phase = rng.gen_range(0.0f32..std::f32::consts::TAU);
        let gains: [f32; 3] = [
            rng.gen_range(0.7..1.3),
            rng.gen_range(0.7..1.3),
            rng.gen_range(0.7..1.3),
        ];
        for c in 0..3 {
            for y in 0..size {
                for x in 0..size {
                    let fy = y as f32 / size as f32;
                    let fx = x as f32 / size as f32;
                    let v = match class {
                        0 => (std::f32::consts::TAU * freq * fy + phase).sin(),
                        1 => (std::f32::consts::TAU * freq * fx + phase).sin(),
                        2 => {
                            ((std::f32::consts::TAU * freq * fx + phase).sin()
                                * (std::f32::consts::TAU * freq * fy + phase).sin())
                            .signum()
                                * 0.8
                        }
                        _ => (std::f32::consts::TAU * freq * (fx + fy) + phase).sin(),
                    };
                    let noise_v: f32 = {
                        // Box-Muller on the shared stream.
                        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                        let u2: f32 = rng.gen_range(0.0f32..1.0);
                        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                    };
                    images.set(&[i, c, y, x], gains[c] * v + noise * noise_v);
                }
            }
        }
    }
    Dataset { images, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(8, 8, 0.2, 42);
        let b = generate(8, 8, 0.2, 42);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.images.max_abs_diff(&b.images), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(8, 8, 0.2, 1);
        let b = generate(8, 8, 0.2, 2);
        assert!(a.images.max_abs_diff(&b.images) > 0.1);
    }

    #[test]
    fn all_classes_appear_in_large_sets() {
        let d = generate(200, 8, 0.2, 3);
        for c in 0..CLASSES {
            assert!(d.labels.contains(&c), "class {c} missing");
        }
    }

    #[test]
    fn values_are_bounded() {
        let d = generate(16, 8, 0.3, 4);
        assert!(d.images.max_abs() < 6.0);
        assert!(d.images.data().iter().all(|v| v.is_finite()));
    }
}
