//! Seeded synthetic image-classification dataset.
//!
//! Substitute for ImageNet in the Fig. 6 reproduction (see DESIGN.md): four
//! texture classes — horizontal stripes, vertical stripes, checkerboard,
//! diagonal waves — with randomized frequency, phase, per-channel gain, and
//! additive Gaussian noise. Hard enough that an un-normalized network
//! struggles, easy enough to train on a CPU in seconds.
//!
//! # RNG discipline (load-bearing)
//!
//! The generator consumes **one shared `StdRng` stream**, seeded once from
//! `seed` — there is no per-image or per-plane re-seeding. Per image, in
//! order: the class, the frequency, the phase, three channel gains, then
//! exactly two uniform draws per pixel (Box-Muller noise) across all three
//! planes. The per-image draw count is therefore a fixed function of
//! `size`, which is what lets [`crate::loader::generate_to`] stream the
//! *same* images to disk one chunk at a time: both generators call
//! [`generate_image_into`] on the same stream, so their output is bitwise
//! identical. The stream's draw order is pinned by the golden checksum
//! test below (`generator_output_is_pinned`); any reordering is a format
//! break for every `*.mbsds` file ever generated, and must bump
//! [`crate::loader::MBSDS_VERSION`].

#![allow(clippy::needless_range_loop)] // indexed loops address multiple planes

use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mbs_tensor::Tensor;

use crate::loader::{self, DiskDataset, LoaderError};

/// Number of texture classes.
pub const CLASSES: usize = 4;

/// A labeled image set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images `[n, 3, size, size]`.
    pub images: Tensor,
    /// One label in `0..CLASSES` per image.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Saves this set as an atomic, checksummed `*.mbsds` file (chunk
    /// size from the `MBS_LOADER_CHUNK` knob). A later
    /// [`Dataset::open`] or [`DiskDataset::load`] reproduces it bitwise.
    ///
    /// # Errors
    ///
    /// See [`loader::save_dataset`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), LoaderError> {
        loader::save_dataset(self, path)
    }

    /// Loads a `*.mbsds` file fully into memory, validating every chunk
    /// checksum. The streamed counterpart — training directly off the
    /// file without materializing it — is
    /// [`DataSource::Stream`](crate::training::DataSource).
    ///
    /// # Errors
    ///
    /// See [`DiskDataset::open`] and [`DiskDataset::load`].
    ///
    /// # Examples
    ///
    /// ```
    /// use mbs_train::data::{generate, Dataset};
    ///
    /// let dir = std::env::temp_dir().join("mbsds-doc-bridge");
    /// let path = dir.join("set.mbsds");
    /// let set = generate(6, 4, 0.2, 21);
    /// set.save(&path).unwrap();
    /// let reloaded = Dataset::open(&path).unwrap();
    /// assert_eq!(reloaded.labels, set.labels);
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// ```
    pub fn open(path: impl AsRef<Path>) -> Result<Self, LoaderError> {
        DiskDataset::open(path)?.load()
    }
}

/// Generates one image directly into `out` (length `3 * size * size`,
/// CHW order) and returns its class, consuming the shared RNG stream in
/// the pinned draw order (see the module docs). Both [`generate`] and
/// the streaming [`crate::loader::generate_to`] are thin loops over this
/// routine — the single definition is what guarantees they can never
/// drift apart.
pub fn generate_image_into(rng: &mut StdRng, size: usize, noise: f32, out: &mut [f32]) -> usize {
    debug_assert_eq!(out.len(), 3 * size * size);
    let class = rng.gen_range(0..CLASSES);
    let freq = rng.gen_range(1.0f32..3.0);
    let phase = rng.gen_range(0.0f32..std::f32::consts::TAU);
    let gains: [f32; 3] = [
        rng.gen_range(0.7..1.3),
        rng.gen_range(0.7..1.3),
        rng.gen_range(0.7..1.3),
    ];
    for c in 0..3 {
        for y in 0..size {
            for x in 0..size {
                let fy = y as f32 / size as f32;
                let fx = x as f32 / size as f32;
                let v = match class {
                    0 => (std::f32::consts::TAU * freq * fy + phase).sin(),
                    1 => (std::f32::consts::TAU * freq * fx + phase).sin(),
                    2 => {
                        ((std::f32::consts::TAU * freq * fx + phase).sin()
                            * (std::f32::consts::TAU * freq * fy + phase).sin())
                        .signum()
                            * 0.8
                    }
                    _ => (std::f32::consts::TAU * freq * (fx + fy) + phase).sin(),
                };
                let noise_v: f32 = {
                    // Box-Muller on the shared stream.
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0f32..1.0);
                    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                };
                out[(c * size + y) * size + x] = gains[c] * v + noise * noise_v;
            }
        }
    }
    class
}

/// Generates `n` samples of `size × size` images with the given noise
/// standard deviation. Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// let d = mbs_train::data::generate(16, 12, 0.3, 7);
/// assert_eq!(d.images.shape(), &[16, 3, 12, 12]);
/// assert_eq!(d.labels.len(), 16);
/// ```
pub fn generate(n: usize, size: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Tensor::zeros(&[n, 3, size, size]);
    let mut labels = Vec::with_capacity(n);
    let row = 3 * size * size;
    for i in 0..n {
        let class = generate_image_into(
            &mut rng,
            size,
            noise,
            &mut images.data_mut()[i * row..(i + 1) * row],
        );
        labels.push(class);
    }
    Dataset { images, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(8, 8, 0.2, 42);
        let b = generate(8, 8, 0.2, 42);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.images.max_abs_diff(&b.images), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(8, 8, 0.2, 1);
        let b = generate(8, 8, 0.2, 2);
        assert!(a.images.max_abs_diff(&b.images) > 0.1);
    }

    #[test]
    fn all_classes_appear_in_large_sets() {
        let d = generate(200, 8, 0.2, 3);
        for c in 0..CLASSES {
            assert!(d.labels.contains(&c), "class {c} missing");
        }
    }

    #[test]
    fn values_are_bounded() {
        let d = generate(16, 8, 0.3, 4);
        assert!(d.images.max_abs() < 6.0);
        assert!(d.images.data().iter().all(|v| v.is_finite()));
    }

    /// Pins the generator's RNG draw order with a golden checksum over the
    /// exact output bits. If this fails, the generator's stream discipline
    /// changed: every `*.mbsds` file ever generated (and the streamed /
    /// in-memory bitwise-equivalence contract in `loader.rs`) is affected,
    /// so treat it as a format break — bump `MBSDS_VERSION` and
    /// re-compute the constants below with the `eprintln!` left in place.
    ///
    /// The checksum covers f32 *bit patterns*, not values, so it also
    /// catches "harmless" numeric rewrites (e.g. fusing the Box-Muller
    /// expression) that would silently desynchronize old files. Note the
    /// transcendentals (`sin`, `ln`, `cos`) come from the platform libm:
    /// the constants are pinned for the CI image's toolchain; a libm
    /// change shows up here as a cross-platform drift, which is exactly
    /// the kind of silence this test exists to break.
    #[test]
    fn generator_output_is_pinned() {
        let d = generate(6, 8, 0.25, 1234);
        let mut bytes = Vec::with_capacity(d.images.len() * 4 + d.labels.len());
        for &v in d.images.data() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &l in &d.labels {
            bytes.extend_from_slice(&(l as u32).to_le_bytes());
        }
        let checksum = mbs_core::fnv1a64(&bytes);
        eprintln!("generator checksum: {checksum:016x} labels: {:?}", d.labels);
        assert_eq!(
            d.labels,
            vec![3, 1, 1, 1, 1, 0],
            "per-image class draws moved — the shared RNG stream reordered"
        );
        assert_eq!(
            checksum, GOLDEN_GENERATOR_CHECKSUM,
            "generator output bits drifted from the pinned golden checksum"
        );
    }

    /// Golden checksum of `generate(6, 8, 0.25, 1234)`'s output bits.
    /// Recompute from the `eprintln!` above after an *intentional* format
    /// break (and bump `MBSDS_VERSION`).
    const GOLDEN_GENERATOR_CHECKSUM: u64 = 0xea9c_8307_cf48_e570;
}
