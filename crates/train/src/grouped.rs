//! Schedule-driven grouped execution: run the serialized training step the
//! way the MBS scheduler planned it (paper §3, Fig. 5).
//!
//! [`crate::executor::train_step_mbs`] serializes the *whole* network at
//! one sub-batch size. The paper's actual mechanism is finer: the
//! scheduler partitions layers into groups, each with its own sub-batch
//! size (deeper groups carry more samples because down-sampling shrinks
//! their footprints). [`GroupedExecutor`] executes exactly that plan over
//! a [`crate::lower::LoweredNet`]:
//!
//! - **Within a group** activations stream sub-batch-at-a-time, exactly as
//!   the uniform executor does.
//! - **At group boundaries** each chunk's output is staged into a pooled
//!   full-mini-batch boundary buffer; the next group re-slices that buffer
//!   at its own (typically larger) sub-batch size.
//! - **Backward replays groups in reverse** (boundary checkpointing): the
//!   full-batch activations are checkpointed only at group boundaries, so
//!   for a multi-chunk group the backward pass re-runs each chunk's
//!   forward from the group's input boundary to repopulate layer caches,
//!   then propagates the re-sliced gradient chunk. Single-iteration groups
//!   — and the most recently forwarded chunk of each group — skip the
//!   replay because their caches are still live. Gradients cross each
//!   boundary through a staged full-batch gradient buffer, re-sliced at
//!   the upstream group's sub-batch size.
//!
//! The synchronization points are the same as the uniform executor's: loss
//! gradients are scaled by the *total* mini-batch size, parameter
//! gradients accumulate across every chunk of every group, and the
//! optimizer steps once at the end — so for per-sample normalizations (GN)
//! the grouped step matches `train_step_full` to f32 rounding, whatever
//! the schedule. All staging buffers persist inside the executor and chunk
//! slices come from the pooled arena, so steady-state grouped steps run
//! with zero arena misses.

use mbs_core::{Group, Schedule};
use mbs_tensor::ops::{cross_entropy, softmax, softmax_xent_backward};
use mbs_tensor::Tensor;

use crate::lower::LoweredNet;
use crate::module::{slice_batch_into, slice_batch_owned, Module};
use crate::optim::Sgd;

/// Executes training steps group-wise according to an MBS [`Schedule`].
///
/// The executor owns the boundary staging buffers (activations and
/// gradients at every group boundary) so repeated steps reuse them; one
/// instance should live as long as the training loop.
///
/// Use it with **per-sample normalizations** (GN, or none) — the models
/// MBS targets. Batch normalization is already incompatible with any
/// serialized execution (paper §3.1: sub-batch statistics differ), and
/// under this executor the backward *replay* additionally re-runs
/// training forwards, so a lowered `BatchNorm2d`'s running statistics
/// would be momentum-updated once more per replayed chunk on top of that.
///
/// # Examples
///
/// ```
/// use mbs_cnn::networks::toy;
/// use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
/// use mbs_train::data::generate;
/// use mbs_train::grouped::GroupedExecutor;
/// use mbs_train::lower::lower;
/// use mbs_train::optim::Sgd;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let net = toy::runtime_mix(8, 8);
/// let hw = HardwareConfig::cpu().with_global_buffer(4 * 1024);
/// let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
/// let mut model = lower(&net, &mut StdRng::seed_from_u64(1)).unwrap();
/// let mut exec = GroupedExecutor::new(&schedule, model.len());
/// let d = generate(8, 8, 0.3, 5);
/// let mut opt = Sgd::new(0.05, 0.9, 1e-4);
/// let loss = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
/// assert!(loss.is_finite());
/// ```
#[derive(Debug)]
pub struct GroupedExecutor {
    groups: Vec<Group>,
    /// `stages[g]` holds group `g`'s full-mini-batch output (the boundary
    /// activation buffer); the last entry is the logits.
    stages: Vec<Tensor>,
    /// `grads[g]` holds the gradient of group `g`'s output, staged chunk
    /// by chunk by group `g + 1`'s backward.
    grads: Vec<Tensor>,
    /// Reusable gradient-chunk slice buffer.
    dy_chunk: Tensor,
    /// Batch-row start of the most recent forward chunk per group —
    /// backward skips the replay for that chunk (its caches are live).
    last_fwd_start: Vec<usize>,
}

impl GroupedExecutor {
    /// Builds an executor for `schedule` over a lowered network with
    /// `node_count` scheduling units.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover exactly `node_count` nodes.
    pub fn new(schedule: &Schedule, node_count: usize) -> Self {
        let covered = schedule.node_count();
        assert_eq!(
            covered, node_count,
            "schedule covers {covered} nodes but the model has {node_count}"
        );
        let groups = schedule.groups().to_vec();
        let n = groups.len();
        Self {
            groups,
            stages: (0..n).map(|_| empty()).collect(),
            grads: (0..n).map(|_| empty()).collect(),
            dy_chunk: empty(),
            last_fwd_start: vec![0; n],
        }
    }

    /// The schedule groups the executor runs.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Grouped forward pass over the full mini-batch; returns the staged
    /// logits. With `train` set, layer caches and the boundary buffers are
    /// left ready for [`GroupedExecutor::backward_from_logits`].
    ///
    /// The per-group sub-batch sizes are applied to whatever batch `x`
    /// carries — a schedule planned for the IR's default mini-batch runs
    /// unchanged on a smaller or larger one (iteration counts are derived
    /// from `x`, not from the schedule's planning batch).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `model` does not have the node count the
    /// schedule covers.
    pub fn forward(&mut self, model: &mut LoweredNet, x: &Tensor, train: bool) -> &Tensor {
        let n = x.shape()[0];
        assert!(n > 0, "empty batch");
        let covered = self.groups.last().map_or(0, |g| g.end);
        assert_eq!(
            model.len(),
            covered,
            "model has {} nodes but the schedule covers {covered}",
            model.len()
        );
        for (g, group) in self.groups.iter().enumerate() {
            // Split so group g's input boundary (stage g-1) stays readable
            // while stage g is written.
            let (prev, cur) = self.stages.split_at_mut(g);
            let src = if g == 0 { x } else { &prev[g - 1] };
            let dst = &mut cur[0];
            let mut start = 0;
            while start < n {
                let end = (start + group.sub_batch).min(n);
                let chunk = slice_batch_owned(src, start, end);
                let y = model.forward_range(group.start..group.end, chunk, train);
                stage_rows(dst, &y, start, n);
                self.last_fwd_start[g] = start;
                start = end;
            }
        }
        self.stages.last().expect("at least one group")
    }

    /// Grouped backward pass from a full-batch logits gradient, replaying
    /// groups in reverse and re-slicing gradients at each boundary.
    /// Parameter gradients accumulate into the model; the returned value
    /// is the gradient with respect to the network input.
    ///
    /// # Panics
    ///
    /// Panics if [`GroupedExecutor::forward`] (with `train = true`) has
    /// not populated the boundary buffers for `x`.
    pub fn backward_from_logits(
        &mut self,
        model: &mut LoweredNet,
        x: &Tensor,
        dlogits: Tensor,
    ) -> Tensor {
        self.backward_inner(model, x, dlogits, true)
    }

    /// [`GroupedExecutor::backward_from_logits`] body; `want_dx` skips
    /// assembling the full-batch input gradient (an input-sized buffer
    /// plus one copy per group-0 chunk) when the caller discards it, as
    /// [`GroupedExecutor::train_step`] does.
    fn backward_inner(
        &mut self,
        model: &mut LoweredNet,
        x: &Tensor,
        dlogits: Tensor,
        want_dx: bool,
    ) -> Tensor {
        let n = x.shape()[0];
        let last = self.groups.len() - 1;
        self.grads[last] = dlogits;
        let mut dx = empty();
        for g in (0..self.groups.len()).rev() {
            let group = self.groups[g].clone();
            // Consume this boundary's gradient buffer; its storage returns
            // to the arena when the group is done.
            let dy_full = std::mem::replace(&mut self.grads[g], empty());
            // Detach the input boundary (if any) so `self` stays borrowable.
            let src_owned: Option<Tensor> =
                (g > 0).then(|| std::mem::replace(&mut self.stages[g - 1], empty()));
            let src: &Tensor = src_owned.as_ref().unwrap_or(x);
            // Reverse chunk order: the first chunk processed is the last
            // one forwarded, whose layer caches are still live.
            let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(group.iterations);
            let mut start = 0;
            while start < n {
                let end = (start + group.sub_batch).min(n);
                bounds.push((start, end));
                start = end;
            }
            for &(start, end) in bounds.iter().rev() {
                if start != self.last_fwd_start[g] {
                    // Boundary checkpointing: replay this chunk's forward
                    // to repopulate the group's layer caches.
                    let chunk = slice_batch_owned(src, start, end);
                    let _ = model.forward_range(group.start..group.end, chunk, true);
                    self.last_fwd_start[g] = start;
                }
                slice_batch_into(&dy_full, start, end, &mut self.dy_chunk);
                let d = model.backward_range(group.start..group.end, &self.dy_chunk);
                if g == 0 {
                    if want_dx {
                        stage_rows(&mut dx, &d, start, n);
                    }
                } else {
                    stage_rows(&mut self.grads[g - 1], &d, start, n);
                }
            }
            if let Some(boundary) = src_owned {
                // Re-attach the input boundary (forward's staged values are
                // still needed by group g-1's replay).
                self.stages[g - 1] = boundary;
            }
        }
        dx
    }

    /// One grouped training step: grouped forward, full-batch softmax
    /// cross-entropy (row-wise, so chunking cannot change it), grouped
    /// backward, one optimizer step. Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics if `labels` length differs from the batch size or `model`
    /// does not have the node count the schedule covers.
    pub fn train_step(
        &mut self,
        model: &mut LoweredNet,
        x: &Tensor,
        labels: &[usize],
        opt: &mut Sgd,
    ) -> f32 {
        let n = x.shape()[0];
        assert_eq!(labels.len(), n, "one label per sample");
        model.zero_grad();
        self.forward(model, x, true);
        let logits = self.stages.last().expect("at least one group");
        let probs = softmax(logits);
        let loss = cross_entropy(&probs, labels);
        let dlogits = softmax_xent_backward(&probs, labels, n);
        drop(probs);
        let _ = self.backward_inner(model, x, dlogits, false);
        opt.step(model);
        loss
    }
}

/// A zero-element placeholder tensor with **no** backing allocation — it
/// neither draws from nor returns to the arena, so swapping placeholders
/// in and out of the staging slots is free and does not churn the pool.
fn empty() -> Tensor {
    Tensor::from_vec(&[0], Vec::new())
}

/// Copies `src` (a chunk of `rows` batch rows) into `dst` at batch-row
/// offset `row_start`, sizing `dst` as `[batch, src.shape[1..]]` first if
/// its shape is stale.
fn stage_rows(dst: &mut Tensor, src: &Tensor, row_start: usize, batch: usize) {
    let mut target = src.shape().to_vec();
    target[0] = batch;
    if dst.shape() != &target[..] {
        *dst = Tensor::uninit(&target);
    }
    let rows = src.shape()[0];
    let row = src.len() / rows.max(1);
    dst.data_mut()[row_start * row..(row_start + rows) * row].copy_from_slice(src.data());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;
    use crate::executor::train_step_full;
    use crate::lower::lower;
    use mbs_cnn::networks::toy;
    use mbs_cnn::FeatureShape;
    use mbs_core::ExecConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn multi_group_schedule(nodes: usize, batch: usize) -> Schedule {
        // Two groups with distinct sub-batch sizes — the shape the paper's
        // Fig. 5 schedules take (small early sub-batches, larger deep ones).
        let cut = nodes / 2;
        Schedule::new(
            ExecConfig::Mbs1,
            batch,
            vec![
                Group::new(0, cut, 2, batch),
                Group::new(cut, nodes, batch, batch),
            ],
            true,
        )
    }

    #[test]
    fn grouped_forward_matches_full_forward() {
        let net = toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 8);
        let mut a = lower(&net, &mut StdRng::seed_from_u64(5)).unwrap();
        let mut b = lower(&net, &mut StdRng::seed_from_u64(5)).unwrap();
        let d = generate(8, 8, 0.3, 41);
        let full = a.forward(&d.images, false);
        let sched = multi_group_schedule(net.nodes().len(), 8);
        let mut exec = GroupedExecutor::new(&sched, b.len());
        let grouped = exec.forward(&mut b, &d.images, false);
        assert!(
            full.max_abs_diff(grouped) < 1e-5,
            "grouped forward diverged: {}",
            full.max_abs_diff(grouped)
        );
    }

    #[test]
    #[should_panic(expected = "schedule covers")]
    fn schedule_model_mismatch_is_rejected() {
        let net = toy::conv_chain(&[4], FeatureShape::new(3, 8, 8), 4);
        let model = lower(&net, &mut StdRng::seed_from_u64(1)).unwrap();
        let sched = multi_group_schedule(net.nodes().len() + 1, 4);
        let _ = GroupedExecutor::new(&sched, model.len());
    }

    #[test]
    fn uneven_final_chunks_are_handled() {
        // batch 7 with sub-batches 2 and 7: the re-slicing must cope with
        // remainder chunks on both sides of the boundary.
        let net = toy::runtime_mix(8, 7);
        let mut full = lower(&net, &mut StdRng::seed_from_u64(9)).unwrap();
        let mut grouped = lower(&net, &mut StdRng::seed_from_u64(9)).unwrap();
        let d = generate(7, 8, 0.3, 43);
        let mut oa = Sgd::new(0.05, 0.9, 0.0);
        let mut ob = Sgd::new(0.05, 0.9, 0.0);
        let sched = multi_group_schedule(net.nodes().len(), 7);
        let mut exec = GroupedExecutor::new(&sched, grouped.len());
        let lf = train_step_full(&mut full, &d.images, &d.labels, &mut oa);
        let lg = exec.train_step(&mut grouped, &d.images, &d.labels, &mut ob);
        assert!((lf - lg).abs() < 1e-4, "losses {lf} vs {lg}");
    }
}
