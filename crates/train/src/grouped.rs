//! Schedule-driven grouped execution: run the serialized training step the
//! way the MBS scheduler planned it (paper §3, Fig. 5).
//!
//! [`crate::executor::train_step_mbs`] serializes the *whole* network at
//! one sub-batch size. The paper's actual mechanism is finer: the
//! scheduler partitions layers into groups, each with its own sub-batch
//! size (deeper groups carry more samples because down-sampling shrinks
//! their footprints). [`GroupedExecutor`] executes exactly that plan over
//! a [`crate::lower::LoweredNet`]:
//!
//! - **Within a group** activations stream sub-batch-at-a-time, exactly as
//!   the uniform executor does.
//! - **At group boundaries** each chunk's output is staged into a pooled
//!   full-mini-batch boundary buffer; the next group re-slices that buffer
//!   at its own (typically larger) sub-batch size.
//! - **Backward consumes cache stashes in reverse.** A multi-chunk group
//!   overwrites its layers' backward caches chunk by chunk, so the forward
//!   pass *stashes* each chunk's caches — moving them out of the layers
//!   into per-(group, chunk) [`CacheStash`]es, ownership only, no copies —
//!   and backward restores each stash just before propagating that chunk's
//!   gradient. No second forward runs. The `MBS_STASH=0` knob (or
//!   [`GroupedExecutor::set_stashing`]) selects the older
//!   boundary-checkpointing strategy instead: backward *replays* each
//!   chunk's forward from the group's input boundary to rebuild the caches
//!   it needs — less live memory, one extra forward per replayed chunk.
//!   At f32 (the default) both paths produce bitwise-identical training
//!   (replay recomputes exactly the values stashing saved), pinned by the
//!   equivalence tests. Either way, single-iteration groups and the most
//!   recently forwarded chunk of each group use the live caches directly.
//!   Gradients cross each boundary through a staged full-batch gradient
//!   buffer, re-sliced at the upstream group's sub-batch size.
//! - **Reduced precision** (`MBS_PREC=bf16`, or
//!   [`GroupedExecutor::set_precision`]): interior boundary buffers and
//!   stashed cache tensors are stored as bf16, halving both footprints;
//!   gradients, live layer caches, the final logits stage, and all
//!   accumulation stay f32. Each stored element pays one
//!   round-to-nearest-even (relative error ≤ 2⁻⁸), so grouped training
//!   matches full-batch within a slightly wider tolerance, and stash and
//!   replay backward — which quantize at different points — are
//!   tolerance-equal rather than bitwise-equal.
//!
//! The synchronization points are the same as the uniform executor's: loss
//! gradients are scaled by the *total* mini-batch size, parameter
//! gradients accumulate across every chunk of every group, and the
//! optimizer steps once at the end — so for per-sample normalizations (GN,
//! LRN) the grouped step matches `train_step_full` to f32 rounding,
//! whatever the schedule. All staging buffers persist inside the executor,
//! chunk slices come from the pooled arena, and stashed cache tensors keep
//! their arena-backed storage as they move, so steady-state grouped steps
//! run with zero arena misses.

use std::sync::OnceLock;

use mbs_core::{Group, Schedule};
use mbs_tensor::ops::{cross_entropy, softmax, softmax_xent_backward};
use mbs_tensor::prec::{self, Bf16Tensor, Precision};
use mbs_tensor::Tensor;

use crate::lower::LoweredNet;
use crate::module::{slice_batch_into, slice_batch_owned, CacheStash, Module};
use crate::optim::Sgd;

/// Whether grouped backward uses cache stashing: the `MBS_STASH`
/// environment knob, read once per process. Unset (or malformed, with a
/// warning) means stashing; `MBS_STASH=0` restores the backward **replay**
/// strategy (boundary checkpointing) for A/B comparisons and
/// memory-constrained runs. Training results are bitwise identical either
/// way; only the time/memory trade-off moves.
pub fn stash_enabled() -> bool {
    static STASH: OnceLock<bool> = OnceLock::new();
    *STASH.get_or_init(|| mbs_tensor::env::flag_knob("MBS_STASH", true))
}

/// Executes training steps group-wise according to an MBS [`Schedule`].
///
/// The executor owns the boundary staging buffers (activations and
/// gradients at every group boundary) and the per-(group, chunk) cache
/// stashes, so repeated steps reuse them; one instance should live as
/// long as the training loop.
///
/// Use it with **per-sample normalizations** (GN, LRN, or none) — the
/// models MBS targets. Batch normalization is already incompatible with
/// any serialized execution (paper §3.1: sub-batch statistics differ);
/// under the `MBS_STASH=0` replay strategy a lowered `BatchNorm2d`'s
/// running statistics would additionally be momentum-updated once more per
/// replayed chunk (the stashing default does not re-run forwards, so it
/// has no such skew).
///
/// # Examples
///
/// ```
/// use mbs_cnn::networks::toy;
/// use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
/// use mbs_train::data::generate;
/// use mbs_train::grouped::GroupedExecutor;
/// use mbs_train::lower::lower;
/// use mbs_train::optim::Sgd;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let net = toy::runtime_mix(8, 8);
/// let hw = HardwareConfig::cpu().with_global_buffer(4 * 1024);
/// let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
/// let mut model = lower(&net, &mut StdRng::seed_from_u64(1)).unwrap();
/// let mut exec = GroupedExecutor::new(&schedule, model.len());
/// let d = generate(8, 8, 0.3, 5);
/// let mut opt = Sgd::new(0.05, 0.9, 1e-4);
/// let loss = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
/// assert!(loss.is_finite());
/// ```
#[derive(Debug)]
pub struct GroupedExecutor {
    groups: Vec<Group>,
    /// `stages[g]` holds group `g`'s full-mini-batch output (the boundary
    /// activation buffer); the last entry is the logits. Interior stages
    /// follow [`GroupedExecutor::precision`]; the last is always f32.
    stages: Vec<Stage>,
    /// `grads[g]` holds the gradient of group `g`'s output, staged chunk
    /// by chunk by group `g + 1`'s backward.
    grads: Vec<Tensor>,
    /// Reusable gradient-chunk slice buffer.
    dy_chunk: Tensor,
    /// Batch-row start of the most recent forward chunk per group —
    /// backward uses that chunk's caches live (no stash, no replay).
    last_fwd_start: Vec<usize>,
    /// Whether forward stashes per-chunk caches (true) or backward replays
    /// chunk forwards (false).
    stashing: bool,
    /// Storage precision for interior boundary buffers and stashed cache
    /// tensors (the `MBS_PREC` knob by default). bf16 halves both
    /// footprints at the cost of one round-to-nearest-even per stored
    /// element; accumulation and live layer caches stay f32.
    precision: Precision,
    /// `stashes[g][i]` holds chunk `i`'s backward caches for group `g`.
    /// Only multi-iteration groups use their slots, and the chunk a group
    /// forwarded last is never stashed (its caches stay live in the
    /// layers). Slots persist across steps so the deques keep their
    /// capacity.
    stashes: Vec<Vec<CacheStash>>,
}

impl GroupedExecutor {
    /// Builds an executor for `schedule` over a lowered network with
    /// `node_count` scheduling units. Backward strategy (cache stashing
    /// vs replay) defaults to the process-wide [`stash_enabled`] knob.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover exactly `node_count` nodes.
    pub fn new(schedule: &Schedule, node_count: usize) -> Self {
        let covered = schedule.node_count();
        assert_eq!(
            covered, node_count,
            "schedule covers {covered} nodes but the model has {node_count}"
        );
        let groups = schedule.groups().to_vec();
        let n = groups.len();
        Self {
            groups,
            stages: (0..n).map(|_| Stage::F32(empty())).collect(),
            grads: (0..n).map(|_| empty()).collect(),
            dy_chunk: empty(),
            last_fwd_start: vec![0; n],
            stashing: stash_enabled(),
            precision: prec::precision(),
            stashes: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// The schedule groups the executor runs.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Overrides the process-wide `MBS_STASH` decision for this executor
    /// (the bench sweeps stash vs replay in one process; training results
    /// are bitwise identical either way). Takes effect from the next
    /// forward — do not flip it between a forward and its backward.
    /// Turning stashing off drops any held stashes (their tensors return
    /// to the arena).
    pub fn set_stashing(&mut self, stashing: bool) {
        self.stashing = stashing;
        if !stashing {
            for slots in &mut self.stashes {
                for s in slots {
                    s.clear();
                }
            }
        }
    }

    /// Whether this executor stashes caches (vs replaying forwards).
    pub fn stashing(&self) -> bool {
        self.stashing
    }

    /// Overrides the process-wide `MBS_PREC` decision for this executor's
    /// boundary buffers and cache stashes (the bench A/Bs the two
    /// precisions in one process; the GEMM packing precision stays
    /// process-wide). Takes effect from the next forward — held stashes
    /// and staged boundaries are dropped, their storage returning to the
    /// arena.
    pub fn set_precision(&mut self, prec: Precision) {
        self.precision = prec;
        for s in &mut self.stages {
            *s = Stage::F32(empty());
        }
        for slots in &mut self.stashes {
            slots.clear();
        }
    }

    /// The precision interior boundary buffers and stashed cache tensors
    /// are stored at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Resident bytes of the staged boundary activation buffers,
    /// excluding the final (logits) stage, which always stays f32 —
    /// exactly the footprint bf16 mode halves.
    pub fn boundary_bytes(&self) -> usize {
        let interior = self.stages.len().saturating_sub(1);
        self.stages[..interior].iter().map(Stage::bytes).sum()
    }

    /// Resident bytes of tensor-valued cache-stash entries currently held
    /// across all groups ([`CacheStash::tensor_bytes`]).
    pub fn stash_tensor_bytes(&self) -> usize {
        self.stashes
            .iter()
            .flatten()
            .map(CacheStash::tensor_bytes)
            .sum()
    }

    /// Grouped forward pass over the full mini-batch; returns the staged
    /// logits. With `train` set, layer caches, cache stashes, and the
    /// boundary buffers are left ready for
    /// [`GroupedExecutor::backward_from_logits`].
    ///
    /// The per-group sub-batch sizes are applied to whatever batch `x`
    /// carries — a schedule planned for the IR's default mini-batch runs
    /// unchanged on a smaller or larger one (iteration counts are derived
    /// from `x`, not from the schedule's planning batch).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `model` does not have the node count the
    /// schedule covers.
    pub fn forward(&mut self, model: &mut LoweredNet, x: &Tensor, train: bool) -> &Tensor {
        let n = x.shape()[0];
        assert!(n > 0, "empty batch");
        let covered = self.groups.last().map_or(0, |g| g.end);
        assert_eq!(
            model.len(),
            covered,
            "model has {} nodes but the schedule covers {covered}",
            model.len()
        );
        let last = self.groups.len() - 1;
        let precision = self.precision;
        for (g, group) in self.groups.iter().enumerate() {
            // Split so group g's input boundary (stage g-1) stays readable
            // while stage g is written. Interior boundaries are stored at
            // the executor's precision; the final stage (the logits this
            // method returns) always stays f32.
            let (prev, cur) = self.stages.split_at_mut(g);
            let src: Option<&Stage> = (g > 0).then(|| &prev[g - 1]);
            let dst = &mut cur[0];
            let stage_prec = if g == last { Precision::F32 } else { precision };
            let mut start = 0;
            let mut chunk_idx = 0usize;
            while start < n {
                let end = (start + group.sub_batch).min(n);
                let chunk = match src {
                    None => slice_batch_owned(x, start, end),
                    Some(s) => s.chunk(start, end),
                };
                let y = model.forward_range(group.start..group.end, chunk, train);
                stage_write(dst, &y, start, n, stage_prec);
                self.last_fwd_start[g] = start;
                if train && self.stashing && end < n {
                    // Another chunk will overwrite this group's layer
                    // caches — move them out first. The group's *last*
                    // chunk is never stashed: backward meets it first and
                    // uses the live caches.
                    let slots = &mut self.stashes[g];
                    while slots.len() <= chunk_idx {
                        slots.push(CacheStash::with_precision(precision));
                    }
                    let stash = &mut slots[chunk_idx];
                    // A leftover stash (a forward whose backward never ran)
                    // is dropped — its tensors return to the arena.
                    stash.clear();
                    model.stash_range(group.start..group.end, stash);
                }
                chunk_idx += 1;
                start = end;
            }
        }
        match self.stages.last().expect("at least one group") {
            Stage::F32(t) => t,
            Stage::Bf16(_) => unreachable!("the final stage is always f32"),
        }
    }

    /// Grouped backward pass from a full-batch logits gradient, restoring
    /// each chunk's stashed caches (or replaying its forward under
    /// `MBS_STASH=0`) and re-slicing gradients at each boundary.
    /// Parameter gradients accumulate into the model; the returned value
    /// is the gradient with respect to the network input.
    ///
    /// # Panics
    ///
    /// Panics if [`GroupedExecutor::forward`] (with `train = true`) has
    /// not populated the boundary buffers and stashes for `x`.
    pub fn backward_from_logits(
        &mut self,
        model: &mut LoweredNet,
        x: &Tensor,
        dlogits: Tensor,
    ) -> Tensor {
        self.backward_inner(model, x, dlogits, true)
    }

    /// [`GroupedExecutor::backward_from_logits`] body; `want_dx` skips
    /// assembling the full-batch input gradient (an input-sized buffer
    /// plus one copy per group-0 chunk) when the caller discards it, as
    /// [`GroupedExecutor::train_step`] does.
    fn backward_inner(
        &mut self,
        model: &mut LoweredNet,
        x: &Tensor,
        dlogits: Tensor,
        want_dx: bool,
    ) -> Tensor {
        let n = x.shape()[0];
        let last = self.groups.len() - 1;
        self.grads[last] = dlogits;
        let mut dx = empty();
        for g in (0..self.groups.len()).rev() {
            let group = self.groups[g].clone();
            // Consume this boundary's gradient buffer; its storage returns
            // to the arena when the group is done.
            let dy_full = std::mem::replace(&mut self.grads[g], empty());
            // Detach the input boundary (if any) so `self` stays borrowable.
            let src_owned: Option<Stage> =
                (g > 0).then(|| std::mem::replace(&mut self.stages[g - 1], Stage::F32(empty())));
            // Reverse chunk order: the first chunk processed is the last
            // one forwarded, whose layer caches are still live.
            let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(group.iterations);
            let mut start = 0;
            while start < n {
                let end = (start + group.sub_batch).min(n);
                bounds.push((start, end));
                start = end;
            }
            for (chunk_idx, &(start, end)) in bounds.iter().enumerate().rev() {
                if start != self.last_fwd_start[g] {
                    // Only consult stashes in stash mode: a leftover stash
                    // from an earlier stash-mode forward (one whose
                    // backward never ran) must not shadow a replay-mode
                    // step's current batch.
                    let stash = self
                        .stashing
                        .then(|| self.stashes[g].get_mut(chunk_idx))
                        .flatten();
                    match stash.filter(|s| !s.is_empty()) {
                        Some(stash) => {
                            // Cache stashing: restore the caches this
                            // chunk's forward saved — no recompute.
                            model.unstash_range(group.start..group.end, stash);
                        }
                        None => {
                            // Boundary checkpointing (`MBS_STASH=0`):
                            // replay this chunk's forward from the group's
                            // input boundary to repopulate the caches.
                            let chunk = match &src_owned {
                                None => slice_batch_owned(x, start, end),
                                Some(s) => s.chunk(start, end),
                            };
                            let _ = model.forward_range(group.start..group.end, chunk, true);
                        }
                    }
                    self.last_fwd_start[g] = start;
                }
                slice_batch_into(&dy_full, start, end, &mut self.dy_chunk);
                let d = model.backward_range(group.start..group.end, &self.dy_chunk);
                if g == 0 {
                    if want_dx {
                        stage_rows(&mut dx, &d, start, n);
                    }
                } else {
                    stage_rows(&mut self.grads[g - 1], &d, start, n);
                }
            }
            if let Some(boundary) = src_owned {
                // Re-attach the input boundary (forward's staged values
                // are still needed by group g-1's replay fallback).
                self.stages[g - 1] = boundary;
            }
        }
        dx
    }

    /// One grouped training step: grouped forward, full-batch softmax
    /// cross-entropy (row-wise, so chunking cannot change it), grouped
    /// backward, one optimizer step. Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics if `labels` length differs from the batch size or `model`
    /// does not have the node count the schedule covers.
    pub fn train_step(
        &mut self,
        model: &mut LoweredNet,
        x: &Tensor,
        labels: &[usize],
        opt: &mut Sgd,
    ) -> f32 {
        let n = x.shape()[0];
        assert_eq!(labels.len(), n, "one label per sample");
        model.zero_grad();
        self.forward(model, x, true);
        let logits = match self.stages.last().expect("at least one group") {
            Stage::F32(t) => t,
            Stage::Bf16(_) => unreachable!("the final stage is always f32"),
        };
        let probs = softmax(logits);
        let loss = cross_entropy(&probs, labels);
        let dlogits = softmax_xent_backward(&probs, labels, n);
        drop(probs);
        let _ = self.backward_inner(model, x, dlogits, false);
        opt.step(model);
        loss
    }
}

/// A zero-element placeholder tensor with **no** backing allocation — it
/// neither draws from nor returns to the arena, so swapping placeholders
/// in and out of the staging slots is free and does not churn the pool.
fn empty() -> Tensor {
    Tensor::from_vec(&[0], Vec::new())
}

/// One group-boundary activation buffer: f32, or bf16-encoded to half the
/// bytes (one round-to-nearest-even per element on the way in, exact
/// decode on the way out).
#[derive(Debug)]
enum Stage {
    F32(Tensor),
    Bf16(Bf16Tensor),
}

impl Stage {
    /// Resident payload bytes of the staged activations.
    fn bytes(&self) -> usize {
        match self {
            Stage::F32(t) => t.len() * 4,
            Stage::Bf16(b) => b.bytes(),
        }
    }

    /// An owned f32 chunk of batch rows `[start, end)`, decoded when the
    /// stage is bf16. Storage comes from the pooled arena either way.
    fn chunk(&self, start: usize, end: usize) -> Tensor {
        match self {
            Stage::F32(t) => slice_batch_owned(t, start, end),
            Stage::Bf16(b) => b.read_rows(start, end - start),
        }
    }
}

/// [`stage_rows`] for a boundary [`Stage`]: stages `src`'s rows at batch
/// row `row_start`, (re)creating the buffer as `[batch, src.shape[1..]]`
/// in `prec`'s representation when its shape or precision is stale.
fn stage_write(dst: &mut Stage, src: &Tensor, row_start: usize, batch: usize, prec: Precision) {
    match prec {
        Precision::F32 => {
            if !matches!(dst, Stage::F32(_)) {
                *dst = Stage::F32(empty());
            }
            let Stage::F32(t) = dst else { unreachable!() };
            stage_rows(t, src, row_start, batch);
        }
        Precision::Bf16 => {
            let mut target = src.shape().to_vec();
            target[0] = batch;
            match dst {
                Stage::Bf16(b) if b.shape() == &target[..] => {}
                _ => *dst = Stage::Bf16(Bf16Tensor::uninit(&target)),
            }
            let Stage::Bf16(b) = dst else { unreachable!() };
            b.write_rows(src, row_start);
        }
    }
}

/// Copies `src` (a chunk of `rows` batch rows) into `dst` at batch-row
/// offset `row_start`, sizing `dst` as `[batch, src.shape[1..]]` first if
/// its shape is stale.
fn stage_rows(dst: &mut Tensor, src: &Tensor, row_start: usize, batch: usize) {
    let mut target = src.shape().to_vec();
    target[0] = batch;
    if dst.shape() != &target[..] {
        *dst = Tensor::uninit(&target);
    }
    let rows = src.shape()[0];
    let row = src.len() / rows.max(1);
    dst.data_mut()[row_start * row..(row_start + rows) * row].copy_from_slice(src.data());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;
    use crate::executor::train_step_full;
    use crate::lower::lower;
    use mbs_cnn::networks::toy;
    use mbs_cnn::FeatureShape;
    use mbs_core::ExecConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn multi_group_schedule(nodes: usize, batch: usize) -> Schedule {
        // Two groups with distinct sub-batch sizes — the shape the paper's
        // Fig. 5 schedules take (small early sub-batches, larger deep ones).
        let cut = nodes / 2;
        Schedule::new(
            ExecConfig::Mbs1,
            batch,
            vec![
                Group::new(0, cut, 2, batch),
                Group::new(cut, nodes, batch, batch),
            ],
            true,
        )
    }

    /// Tolerance for comparisons whose two sides only diverge through
    /// bf16 boundary/stash storage: zero-extra at f32, a 2⁻⁸-per-element
    /// rounding budget at bf16 (observed diffs sit well under this).
    fn mode_tol(f32_tol: f32) -> f32 {
        match prec::precision() {
            Precision::F32 => f32_tol,
            Precision::Bf16 => f32_tol.max(2e-2),
        }
    }

    #[test]
    fn grouped_forward_matches_full_forward() {
        let net = toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 8);
        let mut a = lower(&net, &mut StdRng::seed_from_u64(5)).unwrap();
        let mut b = lower(&net, &mut StdRng::seed_from_u64(5)).unwrap();
        let d = generate(8, 8, 0.3, 41);
        let full = a.forward(&d.images, false);
        let sched = multi_group_schedule(net.nodes().len(), 8);
        let mut exec = GroupedExecutor::new(&sched, b.len());
        let grouped = exec.forward(&mut b, &d.images, false);
        assert!(
            full.max_abs_diff(grouped) < mode_tol(1e-5),
            "grouped forward diverged: {}",
            full.max_abs_diff(grouped)
        );
    }

    #[test]
    #[should_panic(expected = "schedule covers")]
    fn schedule_model_mismatch_is_rejected() {
        let net = toy::conv_chain(&[4], FeatureShape::new(3, 8, 8), 4);
        let model = lower(&net, &mut StdRng::seed_from_u64(1)).unwrap();
        let sched = multi_group_schedule(net.nodes().len() + 1, 4);
        let _ = GroupedExecutor::new(&sched, model.len());
    }

    #[test]
    fn uneven_final_chunks_are_handled() {
        // batch 7 with sub-batches 2 and 7: the re-slicing must cope with
        // remainder chunks on both sides of the boundary, stashed or not.
        for stashing in [true, false] {
            let net = toy::runtime_mix(8, 7);
            let mut full = lower(&net, &mut StdRng::seed_from_u64(9)).unwrap();
            let mut grouped = lower(&net, &mut StdRng::seed_from_u64(9)).unwrap();
            let d = generate(7, 8, 0.3, 43);
            let mut oa = Sgd::new(0.05, 0.9, 0.0);
            let mut ob = Sgd::new(0.05, 0.9, 0.0);
            let sched = multi_group_schedule(net.nodes().len(), 7);
            let mut exec = GroupedExecutor::new(&sched, grouped.len());
            exec.set_stashing(stashing);
            let lf = train_step_full(&mut full, &d.images, &d.labels, &mut oa);
            let lg = exec.train_step(&mut grouped, &d.images, &d.labels, &mut ob);
            assert!(
                (lf - lg).abs() < mode_tol(1e-4),
                "losses {lf} vs {lg} (stash {stashing})"
            );
        }
    }

    /// A stash-mode forward whose backward never ran must not leak its
    /// stashes into a later replay-mode step: `set_stashing(false)` drops
    /// held stashes and replay backward never consults the slots, so the
    /// step matches a pure replay executor exactly.
    #[test]
    fn switching_to_replay_ignores_stale_stashes() {
        let net = toy::runtime_mix(8, 8);
        let mut a = lower(&net, &mut StdRng::seed_from_u64(6)).unwrap();
        let mut b = lower(&net, &mut StdRng::seed_from_u64(6)).unwrap();
        let d_old = generate(8, 8, 0.3, 45);
        let d_new = generate(8, 8, 0.3, 46);
        let sched = multi_group_schedule(net.nodes().len(), 8);
        let mut ea = GroupedExecutor::new(&sched, a.len());
        ea.set_stashing(true);
        // Forward-only: every non-last chunk's stash stays populated.
        let _ = ea.forward(&mut a, &d_old.images, true);
        ea.set_stashing(false);
        let mut eb = GroupedExecutor::new(&sched, b.len());
        eb.set_stashing(false);
        let mut oa = Sgd::new(0.05, 0.9, 1e-4);
        let mut ob = Sgd::new(0.05, 0.9, 1e-4);
        let la = ea.train_step(&mut a, &d_new.images, &d_new.labels, &mut oa);
        let lb = eb.train_step(&mut b, &d_new.images, &d_new.labels, &mut ob);
        assert_eq!(la, lb, "stale stashes leaked into the replay step");
        let mut pa = Vec::new();
        a.visit_params(&mut |p| pa.push(p.value.clone()));
        let mut i = 0;
        b.visit_params(&mut |p| {
            assert_eq!(pa[i], p.value, "param {i}");
            i += 1;
        });
    }

    /// The stashing claim in miniature: at f32 storage precision, stash
    /// and replay backward produce **bitwise identical** parameter
    /// trajectories — replay recomputes exactly the values stashing
    /// saved. Storage precision is pinned to f32 so the pin also holds
    /// under an `MBS_PREC=bf16` process (the GEMM packing precision is
    /// common to both paths and cancels).
    #[test]
    fn stash_and_replay_are_bitwise_identical() {
        let net = toy::runtime_mix(8, 8);
        let mut m_stash = lower(&net, &mut StdRng::seed_from_u64(3)).unwrap();
        let mut m_replay = lower(&net, &mut StdRng::seed_from_u64(3)).unwrap();
        let d = generate(8, 8, 0.3, 44);
        let sched = multi_group_schedule(net.nodes().len(), 8);
        let mut ea = GroupedExecutor::new(&sched, m_stash.len());
        ea.set_stashing(true);
        ea.set_precision(Precision::F32);
        let mut eb = GroupedExecutor::new(&sched, m_replay.len());
        eb.set_stashing(false);
        eb.set_precision(Precision::F32);
        let mut oa = Sgd::new(0.05, 0.9, 1e-4);
        let mut ob = Sgd::new(0.05, 0.9, 1e-4);
        for step in 0..3 {
            let la = ea.train_step(&mut m_stash, &d.images, &d.labels, &mut oa);
            let lb = eb.train_step(&mut m_replay, &d.images, &d.labels, &mut ob);
            assert_eq!(la, lb, "step {step} losses");
        }
        let mut pa = Vec::new();
        m_stash.visit_params(&mut |p| pa.push(p.value.clone()));
        let mut i = 0;
        m_replay.visit_params(&mut |p| {
            assert_eq!(pa[i], p.value, "param {i} diverged");
            i += 1;
        });
    }

    /// The bf16 footprint pin: with bf16 storage, the interior boundary
    /// buffers and the stashed cache tensors occupy **exactly half** the
    /// bytes their f32 counterparts do.
    #[test]
    fn bf16_storage_halves_boundary_and_stash_bytes() {
        let net = toy::runtime_mix(8, 8);
        let mut m = lower(&net, &mut StdRng::seed_from_u64(7)).unwrap();
        let d = generate(8, 8, 0.3, 47);
        let sched = multi_group_schedule(net.nodes().len(), 8);
        let mut exec = GroupedExecutor::new(&sched, m.len());
        exec.set_stashing(true);

        exec.set_precision(Precision::F32);
        let _ = exec.forward(&mut m, &d.images, true);
        let (b32, s32) = (exec.boundary_bytes(), exec.stash_tensor_bytes());
        assert!(b32 > 0, "interior boundary must be staged");
        assert!(s32 > 0, "multi-chunk group must stash");

        exec.set_precision(Precision::Bf16);
        let _ = exec.forward(&mut m, &d.images, true);
        let (b16, s16) = (exec.boundary_bytes(), exec.stash_tensor_bytes());
        assert_eq!(b16 * 2, b32, "boundary bytes must halve");
        assert_eq!(s16 * 2, s32, "stash tensor bytes must halve");
    }

    /// bf16 grouped training tracks the full-batch step within the
    /// documented rounding budget: each boundary/stash element pays one
    /// round-to-nearest-even (relative error ≤ 2⁻⁸ ≈ 0.4%), so a few
    /// SGD steps stay within 2e-2 of the f32 trajectory (observed diffs
    /// are an order of magnitude smaller; the budget leaves headroom).
    #[test]
    fn bf16_grouped_training_matches_full_within_tolerance() {
        for stashing in [true, false] {
            let net = toy::runtime_mix(8, 8);
            let mut full = lower(&net, &mut StdRng::seed_from_u64(11)).unwrap();
            let mut grouped = lower(&net, &mut StdRng::seed_from_u64(11)).unwrap();
            let d = generate(8, 8, 0.3, 48);
            let sched = multi_group_schedule(net.nodes().len(), 8);
            let mut exec = GroupedExecutor::new(&sched, grouped.len());
            exec.set_stashing(stashing);
            exec.set_precision(Precision::Bf16);
            let mut oa = Sgd::new(0.05, 0.9, 1e-4);
            let mut ob = Sgd::new(0.05, 0.9, 1e-4);
            for step in 0..3 {
                let lf = train_step_full(&mut full, &d.images, &d.labels, &mut oa);
                let lg = exec.train_step(&mut grouped, &d.images, &d.labels, &mut ob);
                assert!(
                    (lf - lg).abs() < 2e-2,
                    "step {step} losses {lf} vs {lg} (stash {stashing})"
                );
            }
            let mut pa = Vec::new();
            full.visit_params(&mut |p| pa.push(p.value.clone()));
            let mut i = 0;
            let mut worst = 0.0f32;
            grouped.visit_params(&mut |p| {
                worst = worst.max(pa[i].max_abs_diff(&p.value));
                i += 1;
            });
            assert!(worst < 2e-2, "param diff {worst} (stash {stashing})");
        }
    }

    /// At bf16 storage, stash and replay backward quantize at different
    /// points (stash re-encodes the caches the forward computed; replay
    /// recomputes caches from the already-quantized boundary), so they
    /// are tolerance-equal, not bitwise-equal — the counterpart of
    /// `stash_and_replay_are_bitwise_identical`.
    #[test]
    fn bf16_stash_and_replay_agree_within_tolerance() {
        let net = toy::runtime_mix(8, 8);
        let mut m_stash = lower(&net, &mut StdRng::seed_from_u64(13)).unwrap();
        let mut m_replay = lower(&net, &mut StdRng::seed_from_u64(13)).unwrap();
        let d = generate(8, 8, 0.3, 49);
        let sched = multi_group_schedule(net.nodes().len(), 8);
        let mut ea = GroupedExecutor::new(&sched, m_stash.len());
        ea.set_stashing(true);
        ea.set_precision(Precision::Bf16);
        let mut eb = GroupedExecutor::new(&sched, m_replay.len());
        eb.set_stashing(false);
        eb.set_precision(Precision::Bf16);
        let mut oa = Sgd::new(0.05, 0.9, 1e-4);
        let mut ob = Sgd::new(0.05, 0.9, 1e-4);
        for step in 0..3 {
            let la = ea.train_step(&mut m_stash, &d.images, &d.labels, &mut oa);
            let lb = eb.train_step(&mut m_replay, &d.images, &d.labels, &mut ob);
            assert!((la - lb).abs() < 2e-2, "step {step} losses {la} vs {lb}");
        }
        let mut pa = Vec::new();
        m_stash.visit_params(&mut |p| pa.push(p.value.clone()));
        let mut i = 0;
        let mut worst = 0.0f32;
        m_replay.visit_params(&mut |p| {
            worst = worst.max(pa[i].max_abs_diff(&p.value));
            i += 1;
        });
        assert!(worst < 2e-2, "param diff {worst}");
    }
}
