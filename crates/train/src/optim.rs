//! SGD with momentum and weight decay, plus the step-decay learning-rate
//! schedule the paper uses in Fig. 6.

use mbs_tensor::Tensor;

use crate::module::{Module, StateDict, StateEntry, StateError};

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (paper uses 0.9-style training).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates the optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocities: Vec::new(),
        }
    }

    /// Applies one update using the gradients accumulated in the model.
    ///
    /// Parameters are visited in a stable order, so the same optimizer can
    /// be reused across steps.
    pub fn step(&mut self, model: &mut dyn Module) {
        let mut i = 0usize;
        let lr = self.lr;
        let mu = self.momentum;
        let wd = self.weight_decay;
        let velocities = &mut self.velocities;
        model.visit_params(&mut |p| {
            if velocities.len() <= i {
                velocities.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocities[i];
            for ((vv, &g), &w) in v
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(p.value.data())
            {
                *vv = mu * *vv + g + wd * w;
            }
            for (w, &vv) in p.value.data_mut().iter_mut().zip(v.data()) {
                *w -= lr * vv;
            }
            i += 1;
        });
    }

    /// Exports the momentum buffers in the same stable order `step` fills
    /// them. An optimizer that has not stepped yet exports an empty dict.
    pub fn export_state(&self, dict: &mut StateDict) {
        for v in &self.velocities {
            dict.push(StateEntry::from_tensor(v));
        }
    }

    /// Restores momentum buffers exported by [`Sgd::export_state`].
    ///
    /// The buffers are adopted as-is; shape agreement with the model being
    /// optimized is guaranteed by the checkpoint fingerprint, and `step`
    /// re-derives buffer/parameter pairing from visit order.
    pub fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        let mut velocities = Vec::with_capacity(dict.len());
        while !dict.is_empty() {
            let entry = dict.pop(velocities.len())?;
            velocities.push(Tensor::from_vec(&entry.shape, entry.data));
        }
        self.velocities = velocities;
        Ok(())
    }
}

/// Step-decay schedule: multiply the base rate by `decay` at each epoch in
/// `milestones` (Fig. 6 uses 0.1 at epochs 30/60/80).
pub fn step_lr(base: f32, decay: f32, milestones: &[usize], epoch: usize) -> f32 {
    let passed = milestones.iter().filter(|&&m| epoch >= m).count() as i32;
    base * decay.powi(passed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sgd_descends_a_quadratic() {
        // Minimize |W·x - t|^2 for a single linear layer.
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new(2, 1, &mut rng);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let x = Tensor::from_vec(&[4, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, -0.5]);
        let t = [1.0f32, -1.0, 0.0, 1.0];
        let mut last = f32::INFINITY;
        for it in 0..200 {
            lin.zero_grad();
            let y = lin.forward(&x, true);
            let mut dy = Tensor::zeros(y.shape());
            let mut loss = 0.0;
            for (i, target) in t.iter().enumerate() {
                let e = y.data()[i] - target;
                loss += e * e;
                dy.data_mut()[i] = 2.0 * e / 4.0;
            }
            let _ = lin.backward(&dy);
            opt.step(&mut lin);
            if it % 50 == 49 {
                assert!(
                    loss < last + 1e-3,
                    "loss should not increase: {loss} > {last}"
                );
                last = loss;
            }
        }
        assert!(last < 0.05, "final loss {last}");
    }

    #[test]
    fn step_lr_decays_at_milestones() {
        assert_eq!(step_lr(0.1, 0.1, &[30, 60, 80], 0), 0.1);
        assert!((step_lr(0.1, 0.1, &[30, 60, 80], 30) - 0.01).abs() < 1e-9);
        assert!((step_lr(0.1, 0.1, &[30, 60, 80], 85) - 1e-4).abs() < 1e-9);
    }
}
