//! The residual CNN used by the Fig. 6 training experiments: a scaled-down
//! ResNet (stem → residual blocks → global pool → classifier) with a
//! pluggable normalization layer.

use rand::rngs::StdRng;

use mbs_tensor::Tensor;

use crate::layers::{Conv2d, GlobalAvgPool, Linear, Relu};
use crate::module::{Module, Param, StateDict, StateError};
use crate::norm::{Norm, NormChoice};

/// A two-conv residual block with optional projection shortcut.
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv2d,
    norm1: Norm,
    relu1: Relu,
    conv2: Conv2d,
    norm2: Norm,
    shortcut: Option<(Conv2d, Norm)>,
    relu_out: Relu,
}

impl ResidualBlock {
    /// Builds a block `in_channels → out_channels` with the given stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        norm: NormChoice,
        rng: &mut StdRng,
    ) -> Self {
        let shortcut = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(in_channels, out_channels, 1, stride, 0, rng),
                Norm::new(norm, out_channels),
            ))
        } else {
            None
        };
        Self {
            conv1: Conv2d::new(in_channels, out_channels, 3, stride, 1, rng),
            norm1: Norm::new(norm, out_channels),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_channels, out_channels, 3, 1, 1, rng),
            norm2: Norm::new(norm, out_channels),
            shortcut,
            relu_out: Relu::new(),
        }
    }

    /// Output of the block's last normalization on `x` (a pre-activation
    /// probe for the Fig. 6 right-hand plots).
    pub fn preactivation(&mut self, x: &Tensor) -> Tensor {
        let h = self.conv1.forward(x, false);
        let h = self.norm1.forward(&h, false);
        let h = self.relu1.forward(&h, false);
        let h = self.conv2.forward(&h, false);
        self.norm2.forward(&h, false)
    }
}

impl Module for ResidualBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        // Intermediates are owned, so every hop uses the owned entry
        // point: ReLUs clamp in place, convs move their backward cache,
        // and the shortcut consumes `x` instead of cloning it.
        let h = self.conv1.forward(&x, train);
        let h = self.norm1.forward_owned(h, train);
        let h = self.relu1.forward_owned(h, train);
        let h = self.conv2.forward_owned(h, train);
        let mut h = self.norm2.forward_owned(h, train);
        let s = match &mut self.shortcut {
            Some((conv, norm)) => {
                let s = conv.forward_owned(x, train);
                norm.forward_owned(s, train)
            }
            None => x,
        };
        h.add_assign(&s);
        drop(s);
        self.relu_out.forward_owned(h, train)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let g = self.relu_out.backward(dy);
        // Main path.
        let d = self.norm2.backward(&g);
        let d = self.conv2.backward(&d);
        let d = self.relu1.backward(&d);
        let d = self.norm1.backward(&d);
        let mut dx = self.conv1.backward(&d);
        // Shortcut path.
        let ds = match &mut self.shortcut {
            Some((conv, norm)) => {
                let d = norm.backward(&g);
                conv.backward(&d)
            }
            None => g,
        };
        dx.add_assign(&ds);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.norm1.visit_params(f);
        self.conv2.visit_params(f);
        self.norm2.visit_params(f);
        if let Some((conv, norm)) = &mut self.shortcut {
            conv.visit_params(f);
            norm.visit_params(f);
        }
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        self.conv1.export_state(dict);
        self.norm1.export_state(dict);
        self.conv2.export_state(dict);
        self.norm2.export_state(dict);
        if let Some((conv, norm)) = &mut self.shortcut {
            conv.export_state(dict);
            norm.export_state(dict);
        }
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        self.conv1.import_state(dict)?;
        self.norm1.import_state(dict)?;
        self.conv2.import_state(dict)?;
        self.norm2.import_state(dict)?;
        if let Some((conv, norm)) = &mut self.shortcut {
            conv.import_state(dict)?;
            norm.import_state(dict)?;
        }
        Ok(())
    }
}

impl ResidualBlock {
    /// Overrides the `MBS_FUSE` decision for every GEMM layer in the block.
    pub fn set_fused(&mut self, fused: bool) {
        self.conv1.set_fused(fused);
        self.conv2.set_fused(fused);
        if let Some((conv, _)) = &mut self.shortcut {
            conv.set_fused(fused);
        }
    }
}

/// The Fig. 6 experiment model: stem conv/norm/relu, two stages of
/// residual blocks, global average pooling, and a linear classifier.
#[derive(Debug, Clone)]
pub struct MiniResNet {
    stem_conv: Conv2d,
    stem_norm: Norm,
    stem_relu: Relu,
    blocks: Vec<ResidualBlock>,
    pool: GlobalAvgPool,
    head: Linear,
}

impl MiniResNet {
    /// Builds the model for `in_channels`-channel square inputs and
    /// `classes` outputs; `blocks_per_stage` residual blocks in each of two
    /// stages (16 and 32 channels, the second stage stride 2).
    pub fn new(
        in_channels: usize,
        classes: usize,
        blocks_per_stage: usize,
        norm: NormChoice,
        rng: &mut StdRng,
    ) -> Self {
        let widths = [16usize, 32usize];
        let mut blocks = Vec::new();
        let mut cur = widths[0];
        for (stage, &width) in widths.iter().enumerate() {
            for i in 0..blocks_per_stage {
                let stride = if stage > 0 && i == 0 { 2 } else { 1 };
                blocks.push(ResidualBlock::new(cur, width, stride, norm, rng));
                cur = width;
            }
        }
        Self {
            stem_conv: Conv2d::new(in_channels, widths[0], 3, 1, 1, rng),
            stem_norm: Norm::new(norm, widths[0]),
            stem_relu: Relu::new(),
            blocks,
            pool: GlobalAvgPool::new(),
            head: Linear::new(cur, classes, rng),
        }
    }

    /// Overrides the process-wide `MBS_FUSE` decision for every GEMM layer
    /// (convs and the classifier head). The bench runner uses this to
    /// sweep fused vs unfused training steps inside one process.
    pub fn set_fused(&mut self, fused: bool) {
        self.stem_conv.set_fused(fused);
        for b in &mut self.blocks {
            b.set_fused(fused);
        }
        self.head.set_fused(fused);
    }

    /// Mean output of the first and last normalization layers on `x`
    /// (the paper's Fig. 6 pre-activation probes).
    pub fn preactivation_means(&mut self, x: &Tensor) -> (f32, f32) {
        let h = self.stem_conv.forward(x, false);
        let first = self.stem_norm.forward(&h, false);
        let mut cur = self.stem_relu.forward(&first, false);
        let n = self.blocks.len();
        let mut last_mean = first.mean();
        for (i, b) in self.blocks.iter_mut().enumerate() {
            if i + 1 == n {
                last_mean = b.preactivation(&cur).mean();
            }
            cur = b.forward(&cur, false);
        }
        (first.mean(), last_mean)
    }
}

impl Module for MiniResNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.stem_conv.forward(x, train);
        let h = self.stem_norm.forward_owned(h, train);
        let mut h = self.stem_relu.forward_owned(h, train);
        for b in &mut self.blocks {
            h = b.forward_owned(h, train);
        }
        let h = self.pool.forward_owned(h, train);
        self.head.forward_owned(h, train)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d = self.head.backward(dy);
        let mut d = self.pool.backward(&d);
        for b in self.blocks.iter_mut().rev() {
            d = b.backward(&d);
        }
        let d = self.stem_relu.backward(&d);
        let d = self.stem_norm.backward(&d);
        self.stem_conv.backward(&d)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem_conv.visit_params(f);
        self.stem_norm.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        self.stem_conv.export_state(dict);
        self.stem_norm.export_state(dict);
        for b in &mut self.blocks {
            b.export_state(dict);
        }
        self.head.export_state(dict);
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        self.stem_conv.import_state(dict)?;
        self.stem_norm.import_state(dict)?;
        for b in &mut self.blocks {
            b.import_state(dict)?;
        }
        self.head.import_state(dict)
    }
}

/// A norm-free conv–bias–ReLU stack (stem → `depth` same-width conv
/// layers → global pool → classifier): every layer is a fused
/// conv+bias+ReLU, so this is the model where the epilogue pipeline
/// carries the *whole* per-layer post-processing — the bench runner sweeps
/// it fused vs unfused to measure the executor-level win.
#[derive(Debug, Clone)]
pub struct ConvNet {
    convs: Vec<Conv2d>,
    pool: GlobalAvgPool,
    head: Linear,
}

impl ConvNet {
    /// Builds the stack for `in_channels`-channel inputs, `classes`
    /// outputs, `width` channels per conv layer, and `depth` conv layers
    /// (≥ 1).
    pub fn new(
        in_channels: usize,
        classes: usize,
        width: usize,
        depth: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(depth >= 1, "ConvNet needs at least one conv layer");
        let mut convs = Vec::with_capacity(depth);
        let mut cur = in_channels;
        for _ in 0..depth {
            convs.push(Conv2d::with_bias_relu(cur, width, 3, 1, 1, true, true, rng));
            cur = width;
        }
        Self {
            convs,
            pool: GlobalAvgPool::new(),
            head: Linear::new(cur, classes, rng),
        }
    }

    /// Overrides the process-wide `MBS_FUSE` decision for every layer.
    pub fn set_fused(&mut self, fused: bool) {
        for c in &mut self.convs {
            c.set_fused(fused);
        }
        self.head.set_fused(fused);
    }
}

impl Module for ConvNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = self.convs[0].forward(x, train);
        for c in &mut self.convs[1..] {
            h = c.forward_owned(h, train);
        }
        let h = self.pool.forward_owned(h, train);
        self.head.forward_owned(h, train)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d = self.head.backward(dy);
        let mut d = self.pool.backward(&d);
        for c in self.convs.iter_mut().rev() {
            d = c.backward(&d);
        }
        d
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for c in &mut self.convs {
            c.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        for c in &mut self.convs {
            c.export_state(dict);
        }
        self.head.export_state(dict);
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        for c in &mut self.convs {
            c.import_state(dict)?;
        }
        self.head.import_state(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    fn input(n: usize) -> Tensor {
        let len = n * 3 * 8 * 8;
        Tensor::from_vec(
            &[n, 3, 8, 8],
            (0..len).map(|v| ((v % 17) as f32 - 8.0) / 5.0).collect(),
        )
    }

    #[test]
    fn forward_produces_logits() {
        for choice in [NormChoice::Batch, NormChoice::Group(4), NormChoice::None] {
            let mut m = MiniResNet::new(3, 4, 1, choice, &mut rng());
            let y = m.forward(&input(2), true);
            assert_eq!(y.shape(), &[2, 4]);
            assert!(y.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut m = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut rng());
        let x = input(2);
        let y = m.forward(&x, true);
        let dx = m.backward(&Tensor::full(y.shape(), 0.1));
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.max_abs() > 0.0);
    }

    #[test]
    fn model_gradient_matches_finite_difference() {
        // Finite differences through a bf16-quantized GEMM are noise, not
        // gradients — f32 only (see `layers::tests::grad_check`).
        if mbs_tensor::prec::precision() != mbs_tensor::prec::Precision::F32 {
            return;
        }
        // End-to-end gradient check through stem + block + head.
        let mut m = MiniResNet::new(3, 3, 1, NormChoice::Group(4), &mut rng());
        let x = input(2);
        let y = m.forward(&x, true);
        let dy = Tensor::from_vec(
            y.shape(),
            (0..y.len()).map(|v| (v as f32 - 2.5) / 4.0).collect(),
        );
        m.zero_grad();
        let _ = m.backward(&dy);

        // Check the first convolution's first weights.
        let mut analytic = Vec::new();
        m.visit_params(&mut |p| {
            if analytic.is_empty() {
                analytic.push((p.value.clone(), p.grad.clone()));
            }
        });
        let (_, grad) = &analytic[0];
        let eps = 1e-2;
        for idx in [0usize, 5] {
            let perturb = |delta: f32, m: &mut MiniResNet| {
                let mut first = true;
                m.visit_params(&mut |p| {
                    if first {
                        p.value.data_mut()[idx] += delta;
                        first = false;
                    }
                });
            };
            perturb(eps, &mut m);
            let lp: f32 = m
                .forward(&x, false)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            perturb(-2.0 * eps, &mut m);
            let lm: f32 = m
                .forward(&x, false)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            perturb(eps, &mut m);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.data()[idx]).abs() < 0.05,
                "idx {idx}: fd {fd} analytic {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn preactivation_probe_reports_two_layers() {
        let mut m = MiniResNet::new(3, 4, 2, NormChoice::Group(4), &mut rng());
        let (first, last) = m.preactivation_means(&input(2));
        assert!(first.is_finite() && last.is_finite());
        // Normalized outputs have small means.
        assert!(first.abs() < 1.0 && last.abs() < 1.0);
    }

    #[test]
    fn param_count_varies_with_norm() {
        let count = |choice| {
            let mut m = MiniResNet::new(3, 4, 1, choice, &mut rng());
            let mut c = 0usize;
            m.visit_params(&mut |p| c += p.value.len());
            c
        };
        assert!(count(NormChoice::Group(4)) > count(NormChoice::None));
        assert_eq!(count(NormChoice::Group(4)), count(NormChoice::Batch));
    }
}
