//! The layer/module abstraction for the CPU training substrate.

use std::collections::VecDeque;

use mbs_tensor::ops::BitMask;
use mbs_tensor::Tensor;

/// A learnable parameter with its accumulated gradient.
///
/// Gradients *accumulate* across backward calls (`+=`), which is what lets
/// the MBS executor serialize a mini-batch into sub-batches and still
/// produce exactly the full-batch gradient (paper §3 "Data
/// Synchronization").
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor,
    /// Accumulated gradient.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.scale(0.0);
    }
}

/// One moved-out piece of a module's backward state. Every variant wraps
/// the `Option` the owning module stores, so stashing is a plain
/// `Option::take` — ownership moves, nothing is copied, and tensor
/// storage stays arena-pooled wherever it goes.
#[derive(Debug)]
pub enum CacheEntry {
    /// A cached activation tensor (layer inputs, normalized values).
    Tensor(Option<Tensor>),
    /// A ReLU sign mask.
    Mask(Option<BitMask>),
    /// Max-pool state: argmax indices plus the input shape.
    Pool(Option<(Vec<usize>, Vec<usize>)>),
    /// A cached shape (pooling layers, FC flatten plumbing).
    Shape(Option<Vec<usize>>),
    /// Per-sample / per-group statistics (normalization inverse stddevs,
    /// LRN scale denominators).
    Stats(Option<Vec<f32>>),
}

/// An ordered bag of [`CacheEntry`] values: the backward state of a module
/// chain for **one** forwarded chunk, moved out of the layers so the next
/// chunk's forward cannot overwrite it.
///
/// [`crate::grouped::GroupedExecutor`] keeps one stash per (group, chunk)
/// and consumes them in reverse chunk order during backward — the
/// cache-stashing alternative to replaying each chunk's forward. Entries
/// are FIFO: modules push in forward order ([`Module::stash_caches`]) and
/// pull in the same order ([`Module::unstash_caches`]), so a chain's stash
/// and unstash walks can both iterate the chain front to back.
///
/// # Examples
///
/// ```
/// use mbs_train::layers::Relu;
/// use mbs_train::module::{CacheStash, Module};
/// use mbs_tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(&[2], vec![-1.0, 2.0]);
/// let _ = relu.forward(&x, true);
/// let mut stash = CacheStash::default();
/// relu.stash_caches(&mut stash);       // mask moves out of the layer
/// assert_eq!(stash.len(), 1);
/// relu.unstash_caches(&mut stash);     // ...and back in
/// assert!(stash.is_empty());
/// let dx = relu.backward(&Tensor::full(&[2], 1.0));
/// assert_eq!(dx.data(), &[0.0, 1.0]);
/// ```
#[derive(Debug, Default)]
pub struct CacheStash {
    entries: VecDeque<CacheEntry>,
}

impl CacheStash {
    /// Appends one entry (modules call this from
    /// [`Module::stash_caches`]).
    pub fn push(&mut self, entry: CacheEntry) {
        self.entries.push_back(entry);
    }

    /// Removes and returns the oldest entry.
    ///
    /// # Panics
    ///
    /// Panics if the stash is empty — a module pulled more entries than
    /// were pushed, i.e. stash/unstash walked different module sequences.
    pub fn pop(&mut self) -> CacheEntry {
        self.entries
            .pop_front()
            .expect("cache stash underflow: unstash order must mirror stash order")
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stash holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (tensor storage returns to the arena) while
    /// keeping the deque's capacity for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Panic helper for a [`CacheEntry`] variant mismatch during unstash.
#[cold]
pub(crate) fn stash_mismatch(wanted: &str, got: &CacheEntry) -> ! {
    panic!("cache stash mismatch: expected {wanted} entry, found {got:?}")
}

/// A differentiable module.
pub trait Module {
    /// Forward pass. `train` selects training behavior (batch-norm batch
    /// statistics, caching for backward).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Forward pass **consuming** an owned input. Semantically identical to
    /// [`Module::forward`]; layers override it to exploit ownership — ReLU
    /// clamps in place instead of allocating an output, Conv2d/Linear move
    /// the input into their backward cache instead of cloning it, identity
    /// norms return the input untouched. Chains that own their
    /// intermediates (every layer-to-layer hop inside a model) should call
    /// this so the serialized sub-batch loop recycles activations instead
    /// of copying them.
    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        self.forward(&x, train)
    }

    /// Backward pass: consumes the output gradient, *accumulates* parameter
    /// gradients, and returns the input gradient.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visits every parameter (used by optimizers and gradient checks).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// **Moves** this module's backward caches (the state a training
    /// forward left behind for [`Module::backward`]) into `stash`, in a
    /// fixed per-module order. After the call the module behaves as if no
    /// training forward had run. Modules that cache nothing push nothing.
    ///
    /// Together with [`Module::unstash_caches`] this is the cache-stashing
    /// protocol the grouped executor uses to keep every chunk's backward
    /// state alive across a multi-chunk group forward (instead of
    /// replaying forwards during backward).
    fn stash_caches(&mut self, stash: &mut CacheStash) {
        let _ = stash;
    }

    /// Restores caches previously moved out by [`Module::stash_caches`],
    /// consuming the same number of entries in the same order.
    ///
    /// # Panics
    ///
    /// Implementations panic if the next entries do not match this
    /// module's expected sequence (the stash belongs to a different chain
    /// or the walk orders diverged).
    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        let _ = stash;
    }

    /// Clears all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Extracts rows `[start, end)` along the batch (first) dimension.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn slice_batch(x: &Tensor, start: usize, end: usize) -> Tensor {
    let n = x.shape()[0];
    assert!(start <= end && end <= n, "batch slice out of range");
    let row = x.len() / n.max(1);
    let mut shape = x.shape().to_vec();
    shape[0] = end - start;
    Tensor::from_vec(&shape, x.data()[start * row..end * row].to_vec())
}

/// [`slice_batch`], but the returned tensor's storage comes from the
/// pooled arena (`Tensor::uninit`) instead of a fresh `Vec` — the chunk is
/// a *private* staging buffer the caller owns outright, so chunked loops
/// (grouped execution, [`crate::executor::evaluate`]) can hand it to
/// [`Module::forward_owned`] and let the chain recycle it in place rather
/// than paying a defensive clone per chunk. Steady-state loops see pure
/// pool hits.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn slice_batch_owned(x: &Tensor, start: usize, end: usize) -> Tensor {
    let n = x.shape()[0];
    assert!(start <= end && end <= n, "batch slice out of range");
    let row = x.len() / n.max(1);
    let mut shape = x.shape().to_vec();
    shape[0] = end - start;
    let mut out = Tensor::uninit(&shape);
    out.data_mut()
        .copy_from_slice(&x.data()[start * row..end * row]);
    out
}

/// [`slice_batch`] into an existing tensor, reusing its allocation — the
/// MBS executor calls this once per sub-batch so the serialized loop does
/// not allocate a fresh input tensor per iteration.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn slice_batch_into(x: &Tensor, start: usize, end: usize, out: &mut Tensor) {
    let n = x.shape()[0];
    assert!(start <= end && end <= n, "batch slice out of range");
    let row = x.len() / n.max(1);
    let mut shape = x.shape().to_vec();
    shape[0] = end - start;
    out.assign(&shape, &x.data()[start * row..end * row]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_batch_into_reuses_allocation() {
        let x = Tensor::from_vec(&[4, 2], (0..8).map(|v| v as f32).collect());
        let mut buf = Tensor::zeros(&[0]);
        slice_batch_into(&x, 1, 3, &mut buf);
        assert_eq!(buf.shape(), &[2, 2]);
        assert_eq!(buf.data(), &[2.0, 3.0, 4.0, 5.0]);
        // Shrinking to a smaller final sub-batch also works.
        slice_batch_into(&x, 3, 4, &mut buf);
        assert_eq!(buf.shape(), &[1, 2]);
        assert_eq!(buf.data(), &[6.0, 7.0]);
    }

    #[test]
    fn slice_batch_owned_matches_slice_batch() {
        let x = Tensor::from_vec(&[4, 3], (0..12).map(|v| v as f32).collect());
        assert_eq!(slice_batch_owned(&x, 1, 3), slice_batch(&x, 1, 3));
        assert_eq!(slice_batch_owned(&x, 0, 4), x);
    }

    #[test]
    fn slice_batch_extracts_rows() {
        let x = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = slice_batch(&x, 1, 3);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        p.grad = Tensor::full(&[2], 3.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
