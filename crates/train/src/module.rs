//! The layer/module abstraction for the CPU training substrate.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use mbs_tensor::ops::BitMask;
use mbs_tensor::prec::{Bf16Tensor, Precision};
use mbs_tensor::Tensor;

/// A learnable parameter with its accumulated gradient.
///
/// Gradients *accumulate* across backward calls (`+=`), which is what lets
/// the MBS executor serialize a mini-batch into sub-batches and still
/// produce exactly the full-batch gradient (paper §3 "Data
/// Synchronization").
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor,
    /// Accumulated gradient.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.scale(0.0);
    }
}

/// One moved-out piece of a module's backward state. Every variant wraps
/// the `Option` the owning module stores, so stashing is a plain
/// `Option::take` — ownership moves, nothing is copied, and tensor
/// storage stays arena-pooled wherever it goes.
#[derive(Debug)]
pub enum CacheEntry {
    /// A cached activation tensor (layer inputs, normalized values).
    Tensor(Option<Tensor>),
    /// A [`CacheEntry::Tensor`] compressed to bf16 while stashed. Modules
    /// never see this variant: a bf16-precision [`CacheStash`] converts
    /// `Tensor` entries to `Packed` on [`CacheStash::push`] and back on
    /// [`CacheStash::pop`], so compression is transparent to the
    /// stash/unstash protocol.
    Packed(Option<Bf16Tensor>),
    /// A ReLU sign mask.
    Mask(Option<BitMask>),
    /// Max-pool state: argmax indices plus the input shape.
    Pool(Option<(Vec<usize>, Vec<usize>)>),
    /// A cached shape (pooling layers, FC flatten plumbing).
    Shape(Option<Vec<usize>>),
    /// Per-sample / per-group statistics (normalization inverse stddevs,
    /// LRN scale denominators).
    Stats(Option<Vec<f32>>),
}

/// An ordered bag of [`CacheEntry`] values: the backward state of a module
/// chain for **one** forwarded chunk, moved out of the layers so the next
/// chunk's forward cannot overwrite it.
///
/// [`crate::grouped::GroupedExecutor`] keeps one stash per (group, chunk)
/// and consumes them in reverse chunk order during backward — the
/// cache-stashing alternative to replaying each chunk's forward. Entries
/// are FIFO: modules push in forward order ([`Module::stash_caches`]) and
/// pull in the same order ([`Module::unstash_caches`]), so a chain's stash
/// and unstash walks can both iterate the chain front to back.
///
/// # Examples
///
/// ```
/// use mbs_train::layers::Relu;
/// use mbs_train::module::{CacheStash, Module};
/// use mbs_tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(&[2], vec![-1.0, 2.0]);
/// let _ = relu.forward(&x, true);
/// let mut stash = CacheStash::default();
/// relu.stash_caches(&mut stash);       // mask moves out of the layer
/// assert_eq!(stash.len(), 1);
/// relu.unstash_caches(&mut stash);     // ...and back in
/// assert!(stash.is_empty());
/// let dx = relu.backward(&Tensor::full(&[2], 1.0));
/// assert_eq!(dx.data(), &[0.0, 1.0]);
/// ```
/// Stashed tensors are held at the stash's **precision**
/// ([`CacheStash::with_precision`]): an f32 stash (the default) moves
/// tensors untouched; a bf16 stash re-encodes them to half the bytes on
/// push and decodes on pop — one round-to-nearest-even per element, the
/// same rounding the bf16 GEMM applies to its packed operands. Masks,
/// argmax indices, shapes, and statistics vectors are small residue and
/// stay uncompressed at either precision.
#[derive(Debug, Default)]
pub struct CacheStash {
    entries: VecDeque<CacheEntry>,
    precision: Precision,
}

impl CacheStash {
    /// An empty stash holding tensor entries at `prec` (the default is
    /// [`Precision::F32`], which moves tensors without conversion).
    pub fn with_precision(prec: Precision) -> Self {
        Self {
            entries: VecDeque::new(),
            precision: prec,
        }
    }

    /// The precision tensor entries are held at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Appends one entry (modules call this from
    /// [`Module::stash_caches`]). A bf16 stash compresses
    /// [`CacheEntry::Tensor`] entries here.
    pub fn push(&mut self, entry: CacheEntry) {
        let entry = match (self.precision, entry) {
            (Precision::Bf16, CacheEntry::Tensor(Some(t))) => {
                CacheEntry::Packed(Some(Bf16Tensor::compress(&t)))
            }
            (_, e) => e,
        };
        self.entries.push_back(entry);
    }

    /// Removes and returns the oldest entry, decoding
    /// [`CacheEntry::Packed`] entries back to [`CacheEntry::Tensor`] so
    /// modules always receive the variant they pushed.
    ///
    /// # Panics
    ///
    /// Panics if the stash is empty — a module pulled more entries than
    /// were pushed, i.e. stash/unstash walked different module sequences.
    pub fn pop(&mut self) -> CacheEntry {
        let entry = self
            .entries
            .pop_front()
            .expect("cache stash underflow: unstash order must mirror stash order");
        match entry {
            CacheEntry::Packed(p) => CacheEntry::Tensor(p.map(|b| b.decompress())),
            e => e,
        }
    }

    /// Resident bytes of the tensor-valued entries currently held — the
    /// measurable footprint the bf16 mode halves (masks, indices, and
    /// statistics residue are not counted).
    pub fn tensor_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| match e {
                CacheEntry::Tensor(Some(t)) => t.len() * 4,
                CacheEntry::Packed(Some(b)) => b.bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stash holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (tensor storage returns to the arena) while
    /// keeping the deque's capacity for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Panic helper for a [`CacheEntry`] variant mismatch during unstash.
#[cold]
pub(crate) fn stash_mismatch(wanted: &str, got: &CacheEntry) -> ! {
    panic!("cache stash mismatch: expected {wanted} entry, found {got:?}")
}

/// One serialized piece of a module's durable state: a shaped f32 blob
/// (a parameter tensor, or auxiliary state like batch-norm running
/// statistics). The JSON encoding round-trips every finite f32 bitwise
/// (`serde_json` prints shortest-round-trip floats).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEntry {
    /// Tensor shape (auxiliary vectors use a rank-1 shape).
    pub shape: Vec<usize>,
    /// Row-major values, `shape.iter().product()` of them.
    pub data: Vec<f32>,
}

impl StateEntry {
    /// Captures a tensor's shape and values.
    pub fn from_tensor(t: &Tensor) -> Self {
        Self {
            shape: t.shape().to_vec(),
            data: t.data().to_vec(),
        }
    }

    /// Captures a flat f32 vector as a rank-1 entry.
    pub fn from_slice(v: &[f32]) -> Self {
        Self {
            shape: vec![v.len()],
            data: v.to_vec(),
        }
    }
}

/// Error raised when a [`StateDict`] does not match the module tree it is
/// imported into — wrong entry count or wrong shapes. The schedule
/// fingerprint check normally rejects such checkpoints before import; this
/// is the defense in depth behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The dict ran out of entries before the module tree was satisfied.
    Missing {
        /// Entries the tree consumed before running dry.
        consumed: usize,
    },
    /// An entry's shape does not match the slot it would be restored into.
    ShapeMismatch {
        /// Shape the module expects.
        expected: Vec<usize>,
        /// Shape found in the dict.
        found: Vec<usize>,
    },
    /// Entries were left over after the module tree was fully restored.
    Leftover {
        /// Number of unconsumed entries.
        remaining: usize,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Missing { consumed } => write!(
                f,
                "state dict exhausted after {consumed} entries — it belongs to a smaller model"
            ),
            StateError::ShapeMismatch { expected, found } => write!(
                f,
                "state entry shape {found:?} does not match the module's {expected:?}"
            ),
            StateError::Leftover { remaining } => write!(
                f,
                "state dict has {remaining} unconsumed entries — it belongs to a larger model"
            ),
        }
    }
}

impl std::error::Error for StateError {}

/// An ordered bag of [`StateEntry`] values: the durable state of a module
/// tree, flattened in the tree's stable walk order (the same order
/// [`Module::visit_params`] uses, with auxiliary state interleaved where
/// its owning module sits in the walk).
///
/// Export pushes ([`Module::export_state`]); import pops in the identical
/// order ([`Module::import_state`]). Matching is positional, not named:
/// the checkpoint layer guards identity with the schedule fingerprint, so
/// the dict never crosses model architectures, and [`StateError`] catches
/// drift if it somehow does.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StateDict {
    entries: VecDeque<StateEntry>,
}

impl StateDict {
    /// Appends one entry (modules call this from
    /// [`Module::export_state`]).
    pub fn push(&mut self, entry: StateEntry) {
        self.entries.push_back(entry);
    }

    /// Appends a tensor's shape and values.
    pub fn push_tensor(&mut self, t: &Tensor) {
        self.push(StateEntry::from_tensor(t));
    }

    /// Appends a flat f32 vector as a rank-1 entry.
    pub fn push_slice(&mut self, v: &[f32]) {
        self.push(StateEntry::from_slice(v));
    }

    /// Removes and returns the oldest entry; `consumed` is how many the
    /// caller already popped (for the error message).
    pub fn pop(&mut self, consumed: usize) -> Result<StateEntry, StateError> {
        self.entries
            .pop_front()
            .ok_or(StateError::Missing { consumed })
    }

    /// Pops the oldest entry into `t`, requiring an exact shape match.
    pub fn pop_into_tensor(&mut self, t: &mut Tensor) -> Result<(), StateError> {
        let e = self.pop(0)?;
        if e.shape != t.shape() || e.data.len() != t.len() {
            return Err(StateError::ShapeMismatch {
                expected: t.shape().to_vec(),
                found: e.shape,
            });
        }
        t.data_mut().copy_from_slice(&e.data);
        Ok(())
    }

    /// Pops the oldest entry into `v`, requiring a rank-1 length match.
    pub fn pop_into_slice(&mut self, v: &mut [f32]) -> Result<(), StateError> {
        let e = self.pop(0)?;
        if e.shape != [v.len()] || e.data.len() != v.len() {
            return Err(StateError::ShapeMismatch {
                expected: vec![v.len()],
                found: e.shape,
            });
        }
        v.copy_from_slice(&e.data);
        Ok(())
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dict holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the dict into its entries, in walk order.
    pub fn into_entries(self) -> Vec<StateEntry> {
        self.entries.into()
    }

    /// Rebuilds a dict from entries produced by
    /// [`StateDict::into_entries`] (or deserialized from a checkpoint).
    pub fn from_entries(entries: Vec<StateEntry>) -> Self {
        Self {
            entries: entries.into(),
        }
    }
}

/// A differentiable module.
pub trait Module {
    /// Forward pass. `train` selects training behavior (batch-norm batch
    /// statistics, caching for backward).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Forward pass **consuming** an owned input. Semantically identical to
    /// [`Module::forward`]; layers override it to exploit ownership — ReLU
    /// clamps in place instead of allocating an output, Conv2d/Linear move
    /// the input into their backward cache instead of cloning it, identity
    /// norms return the input untouched. Chains that own their
    /// intermediates (every layer-to-layer hop inside a model) should call
    /// this so the serialized sub-batch loop recycles activations instead
    /// of copying them.
    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        self.forward(&x, train)
    }

    /// Backward pass: consumes the output gradient, *accumulates* parameter
    /// gradients, and returns the input gradient.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visits every parameter (used by optimizers and gradient checks).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// **Moves** this module's backward caches (the state a training
    /// forward left behind for [`Module::backward`]) into `stash`, in a
    /// fixed per-module order. After the call the module behaves as if no
    /// training forward had run. Modules that cache nothing push nothing.
    ///
    /// Together with [`Module::unstash_caches`] this is the cache-stashing
    /// protocol the grouped executor uses to keep every chunk's backward
    /// state alive across a multi-chunk group forward (instead of
    /// replaying forwards during backward).
    fn stash_caches(&mut self, stash: &mut CacheStash) {
        let _ = stash;
    }

    /// Restores caches previously moved out by [`Module::stash_caches`],
    /// consuming the same number of entries in the same order.
    ///
    /// # Panics
    ///
    /// Implementations panic if the next entries do not match this
    /// module's expected sequence (the stash belongs to a different chain
    /// or the walk orders diverged).
    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        let _ = stash;
    }

    /// Clears all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Appends this module's durable state to `dict` — everything a
    /// checkpoint must capture to reproduce the module's future behavior:
    /// parameter values plus non-parameter state (batch-norm running
    /// statistics). Gradients and backward caches are *not* state —
    /// checkpoints are taken at step boundaries where both are dead.
    ///
    /// The default exports every parameter in [`Module::visit_params`]
    /// order, which is complete for leaf modules whose only state is
    /// their parameters. **Composite modules must override this to
    /// recurse into children** (not rely on the default), so children
    /// carrying auxiliary state get their own hook called; leaves with
    /// extra state (e.g. `BatchNorm2d`) override it to append that state
    /// after their parameters.
    fn export_state(&mut self, dict: &mut StateDict) {
        self.visit_params(&mut |p| dict.push_tensor(&p.value));
    }

    /// Restores state previously appended by [`Module::export_state`],
    /// consuming the same entries in the same order.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] if the dict runs dry or an entry's shape
    /// does not match — the dict belongs to a different model. The module
    /// may be left partially restored in that case; callers treat the
    /// error as fatal for the load, not something to resume from.
    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        let mut err = None;
        let mut consumed = 0usize;
        self.visit_params(&mut |p| {
            if err.is_some() {
                return;
            }
            match dict.pop_into_tensor(&mut p.value) {
                Ok(()) => consumed += 1,
                Err(StateError::Missing { .. }) => {
                    err = Some(StateError::Missing { consumed });
                }
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Extracts rows `[start, end)` along the batch (first) dimension.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn slice_batch(x: &Tensor, start: usize, end: usize) -> Tensor {
    let n = x.shape()[0];
    assert!(start <= end && end <= n, "batch slice out of range");
    let row = x.len() / n.max(1);
    let mut shape = x.shape().to_vec();
    shape[0] = end - start;
    Tensor::from_vec(&shape, x.data()[start * row..end * row].to_vec())
}

/// [`slice_batch`], but the returned tensor's storage comes from the
/// pooled arena (`Tensor::uninit`) instead of a fresh `Vec` — the chunk is
/// a *private* staging buffer the caller owns outright, so chunked loops
/// (grouped execution, [`crate::executor::evaluate`]) can hand it to
/// [`Module::forward_owned`] and let the chain recycle it in place rather
/// than paying a defensive clone per chunk. Steady-state loops see pure
/// pool hits.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn slice_batch_owned(x: &Tensor, start: usize, end: usize) -> Tensor {
    let n = x.shape()[0];
    assert!(start <= end && end <= n, "batch slice out of range");
    let row = x.len() / n.max(1);
    let mut shape = x.shape().to_vec();
    shape[0] = end - start;
    let mut out = Tensor::uninit(&shape);
    out.data_mut()
        .copy_from_slice(&x.data()[start * row..end * row]);
    out
}

/// [`slice_batch`] into an existing tensor, reusing its allocation — the
/// MBS executor calls this once per sub-batch so the serialized loop does
/// not allocate a fresh input tensor per iteration.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn slice_batch_into(x: &Tensor, start: usize, end: usize, out: &mut Tensor) {
    let n = x.shape()[0];
    assert!(start <= end && end <= n, "batch slice out of range");
    let row = x.len() / n.max(1);
    let mut shape = x.shape().to_vec();
    shape[0] = end - start;
    out.assign(&shape, &x.data()[start * row..end * row]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_batch_into_reuses_allocation() {
        let x = Tensor::from_vec(&[4, 2], (0..8).map(|v| v as f32).collect());
        let mut buf = Tensor::zeros(&[0]);
        slice_batch_into(&x, 1, 3, &mut buf);
        assert_eq!(buf.shape(), &[2, 2]);
        assert_eq!(buf.data(), &[2.0, 3.0, 4.0, 5.0]);
        // Shrinking to a smaller final sub-batch also works.
        slice_batch_into(&x, 3, 4, &mut buf);
        assert_eq!(buf.shape(), &[1, 2]);
        assert_eq!(buf.data(), &[6.0, 7.0]);
    }

    #[test]
    fn slice_batch_owned_matches_slice_batch() {
        let x = Tensor::from_vec(&[4, 3], (0..12).map(|v| v as f32).collect());
        assert_eq!(slice_batch_owned(&x, 1, 3), slice_batch(&x, 1, 3));
        assert_eq!(slice_batch_owned(&x, 0, 4), x);
    }

    #[test]
    fn slice_batch_extracts_rows() {
        let x = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = slice_batch(&x, 1, 3);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        p.grad = Tensor::full(&[2], 3.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
