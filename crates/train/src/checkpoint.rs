//! Crash-safe checkpointing for [`train_grouped`](crate::training::train_grouped).
//!
//! A checkpoint is everything needed to resume an interrupted grouped
//! training run **bitwise identically**: model parameters and
//! normalization running statistics ([`Module::export_state`]), SGD
//! momentum buffers, the shuffle RNG state, the epoch/step cursor, and
//! the per-epoch curve recorded so far. A [`Schedule::fingerprint`]
//! guards identity — a checkpoint saved for one (network, schedule) pair
//! refuses to load into another.
//!
//! # On-disk format
//!
//! Each checkpoint is one file named `ckpt-{seq:08}.mbsckpt` containing a
//! single ASCII header line followed by a JSON payload:
//!
//! ```text
//! MBSCKPT <version> <payload-bytes> <fnv1a64-hex>\n
//! {"fingerprint":...,"model":[...],...}
//! ```
//!
//! The header pins the format version, the exact payload length
//! (detects truncation), and an FNV-1a 64 checksum of the payload
//! (detects bit flips). Loading validates magic → version → length →
//! checksum → JSON → fingerprint, in that order, so every torn or
//! corrupted file is rejected with a descriptive error instead of
//! producing a silently wrong resume.
//!
//! # Durability
//!
//! [`save`] is atomic: the bytes are written to `<name>.tmp`, fsynced,
//! renamed over the final name, and the directory is fsynced so the
//! rename itself survives a crash. A crash mid-save therefore leaves
//! either the previous set of checkpoints intact or the new file fully
//! present — never a half-written `*.mbsckpt`. Rotation keeps the newest
//! `keep` files; [`load_latest`] scans newest → oldest and falls back
//! past corrupt files — each one recorded in the returned [`LoadReport`]
//! so callers can count and surface the damage — so a torn latest
//! checkpoint degrades to the previous good one rather than a panic.
//!
//! [`Module::export_state`]: crate::module::Module::export_state
//! [`Schedule::fingerprint`]: mbs_core::Schedule::fingerprint

use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use mbs_core::fnv1a64;

use crate::module::StateEntry;
use crate::training::EpochStats;

/// Current checkpoint format version (the second header field).
pub const CKPT_VERSION: u64 = 1;

/// Header magic (the first header field).
pub const CKPT_MAGIC: &str = "MBSCKPT";

/// File extension of finished checkpoints (`.tmp` is appended while a
/// save is in flight; loaders ignore `.tmp` files).
pub const CKPT_EXT: &str = "mbsckpt";

/// Everything [`train_grouped`](crate::training::train_grouped) needs to
/// resume a run bitwise identically.
///
/// The cursor convention: `rng` is the shuffle RNG state **at the start
/// of `epoch`** (before that epoch's shuffle), and `step_in_epoch`
/// batches of that epoch are already complete with `loss_sum` the sum of
/// their losses over `steps` steps. An end-of-epoch checkpoint stores
/// the *next* epoch with `step_in_epoch == 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// [`Schedule::fingerprint`](mbs_core::Schedule::fingerprint) of the
    /// (network, schedule) pair this state belongs to.
    pub fingerprint: u64,
    /// Network name, for error messages only (identity is `fingerprint`).
    pub net: String,
    /// Epoch the resumed run continues in (0-based).
    pub epoch: usize,
    /// Batches of `epoch` already completed.
    pub step_in_epoch: usize,
    /// Sum of training losses over the completed steps of `epoch`.
    pub loss_sum: f32,
    /// Completed steps of `epoch` (equals `step_in_epoch`; kept separate
    /// so the loss average stays self-describing).
    pub steps: usize,
    /// xoshiro256++ shuffle-RNG state at the start of `epoch` (4 words).
    pub rng: Vec<u64>,
    /// Model state in [`Module::export_state`] order
    /// (parameters plus normalization running statistics).
    ///
    /// [`Module::export_state`]: crate::module::Module::export_state
    pub model: Vec<StateEntry>,
    /// SGD momentum buffers in `visit_params` order.
    pub velocities: Vec<StateEntry>,
    /// Per-epoch curve recorded so far (epochs `0..epoch`).
    pub curve: Vec<EpochStats>,
}

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file exists but is not a valid checkpoint (bad magic, torn
    /// write, checksum mismatch, unparseable payload, ...).
    Format(String),
    /// The file has a newer format version than this build understands.
    Version(u64),
    /// The checkpoint belongs to a different (network, schedule) pair.
    FingerprintMismatch {
        /// Fingerprint of the run trying to resume.
        expected: u64,
        /// Fingerprint stored in the checkpoint (network named in the
        /// error message).
        found: u64,
        /// Network name stored in the checkpoint.
        net: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            Self::Format(msg) => write!(f, "invalid checkpoint: {msg}"),
            Self::Version(v) => write!(
                f,
                "checkpoint format version {v} is newer than this build (max {CKPT_VERSION})"
            ),
            Self::FingerprintMismatch {
                expected,
                found,
                net,
            } => write!(
                f,
                "checkpoint was saved for a different network/schedule \
                 (stored {found:#018x} for net {net:?}, this run is {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Encodes a checkpoint to its on-disk bytes (header line + JSON payload).
pub fn encode(ckpt: &TrainCheckpoint) -> Vec<u8> {
    let payload = serde_json::to_string(ckpt).expect("checkpoint structs always serialize");
    let mut bytes = format!(
        "{CKPT_MAGIC} {CKPT_VERSION} {} {:016x}\n",
        payload.len(),
        fnv1a64(payload.as_bytes())
    )
    .into_bytes();
    bytes.extend_from_slice(payload.as_bytes());
    bytes
}

/// Decodes and fully validates on-disk checkpoint bytes.
///
/// # Errors
///
/// [`CheckpointError::Format`] on bad magic, malformed header, length
/// mismatch (truncation), checksum mismatch (corruption), or an
/// unparseable payload; [`CheckpointError::Version`] when the header
/// declares a version newer than [`CKPT_VERSION`].
pub fn decode(bytes: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
    let bad = |msg: String| CheckpointError::Format(msg);
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| bad("missing header line".into()))?;
    let header =
        std::str::from_utf8(&bytes[..nl]).map_err(|_| bad("header is not valid UTF-8".into()))?;
    let mut fields = header.split_ascii_whitespace();
    let magic = fields.next().unwrap_or("");
    if magic != CKPT_MAGIC {
        return Err(bad(format!("bad magic {magic:?} (want {CKPT_MAGIC:?})")));
    }
    let version: u64 = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("header version field is not an integer".into()))?;
    if version > CKPT_VERSION {
        return Err(CheckpointError::Version(version));
    }
    let declared_len: usize = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("header length field is not an integer".into()))?;
    let checksum = fields
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| bad("header checksum field is not hex".into()))?;
    if fields.next().is_some() {
        return Err(bad("trailing header fields".into()));
    }
    let payload = &bytes[nl + 1..];
    if payload.len() != declared_len {
        return Err(bad(format!(
            "payload is {} bytes but the header declares {declared_len} (truncated write?)",
            payload.len()
        )));
    }
    let actual = fnv1a64(payload);
    if actual != checksum {
        return Err(bad(format!(
            "payload checksum {actual:016x} does not match header {checksum:016x} (corrupt file?)"
        )));
    }
    let payload =
        std::str::from_utf8(payload).map_err(|_| bad("payload is not valid UTF-8".into()))?;
    serde_json::from_str(payload).map_err(|e| bad(format!("payload does not parse: {e}")))
}

/// File name of checkpoint number `seq` (`ckpt-00000042.mbsckpt`).
pub fn file_name(seq: usize) -> String {
    format!("ckpt-{seq:08}.{CKPT_EXT}")
}

/// Atomically writes checkpoint `seq` into `dir` and rotates old files,
/// keeping the newest `keep` (`keep == 0` is treated as 1).
///
/// The bytes land in `<name>.tmp` first, are fsynced, renamed over the
/// final name, and the directory is fsynced — a crash at any point
/// leaves either the old checkpoint set or the new file complete, never
/// a torn `*.mbsckpt`.
///
/// # Errors
///
/// Propagates filesystem failures as [`CheckpointError::Io`].
pub fn save(
    dir: &Path,
    seq: usize,
    ckpt: &TrainCheckpoint,
    keep: usize,
) -> Result<PathBuf, CheckpointError> {
    let path = write_atomic(dir, seq, &encode(ckpt))?;
    rotate(dir, keep.max(1))?;
    Ok(path)
}

/// The atomic tmp-write/fsync/rename/dir-fsync sequence behind [`save`],
/// taking raw bytes so fault-injection tests can write corrupted images
/// through the same code path.
fn write_atomic(dir: &Path, seq: usize, bytes: &[u8]) -> Result<PathBuf, CheckpointError> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file_name(seq));
    let tmp = dir.join(format!("{}.tmp", file_name(seq)));
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &path)?;
    sync_dir(dir);
    Ok(path)
}

/// Fsyncs the directory so a just-renamed file survives a crash. Best
/// effort: some platforms cannot fsync directories, and losing *this*
/// sync only risks the rename, never a torn file.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Deletes all but the newest `keep` finished checkpoints in `dir`.
fn rotate(dir: &Path, keep: usize) -> Result<(), CheckpointError> {
    let mut found = list(dir)?;
    if found.len() > keep {
        let cut = found.len() - keep;
        for (_, path) in found.drain(..cut) {
            let _ = fs::remove_file(path);
        }
    }
    Ok(())
}

/// Finished checkpoints in `dir` as `(seq, path)`, oldest first. In-flight
/// `*.tmp` files and unrelated names are ignored; a missing directory is
/// an empty list.
pub fn list(dir: &Path) -> Result<Vec<(usize, PathBuf)>, CheckpointError> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        let seq = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(&format!(".{CKPT_EXT}")))
            .and_then(|digits| digits.parse::<usize>().ok());
        if let Some(seq) = seq {
            found.push((seq, path));
        }
    }
    found.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(found)
}

/// Loads and validates one checkpoint file.
///
/// # Errors
///
/// See [`decode`]; I/O failures surface as [`CheckpointError::Io`].
pub fn load_file(path: &Path) -> Result<TrainCheckpoint, CheckpointError> {
    decode(&fs::read(path)?)
}

/// Which files [`load_latest`] had to skip on its way to a loadable
/// checkpoint, and why.
///
/// The durable-write protocol makes corrupt finished checkpoints possible
/// only via external damage, but damaged files must *degrade visibly*,
/// not crash — and not vanish into a stderr warning either. Callers (the
/// resume path in `train_grouped`, the serving hot-swap path) inspect the
/// report to count and surface corruption instead of silently serving an
/// older model than they thought.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// `(path, reason)` for every file that looked like a checkpoint but
    /// failed to load, newest first (the scan order).
    pub skipped: Vec<(PathBuf, String)>,
}

impl LoadReport {
    /// `true` when no file had to be skipped.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.skipped.is_empty() {
            return write!(f, "no checkpoints skipped");
        }
        write!(
            f,
            "skipped {} unreadable checkpoint(s):",
            self.skipped.len()
        )?;
        for (path, reason) in &self.skipped {
            write!(f, "\n  {}: {reason}", path.display())?;
        }
        Ok(())
    }
}

/// Loads the newest checkpoint in `dir` that matches `fingerprint`.
///
/// Scans newest → oldest. Corrupt or torn files are skipped — recorded in
/// the returned [`LoadReport`] (and warned on stderr) — so a torn latest
/// checkpoint degrades to the previous good one rather than a panic.
/// Returns `Ok((None, report))` when the directory holds no loadable
/// checkpoint — the caller starts cold, with the report saying whether
/// that is an empty directory or a directory full of damage.
///
/// # Errors
///
/// A checkpoint that *decodes* but carries a different fingerprint is a
/// **hard** [`CheckpointError::FingerprintMismatch`]: resuming a
/// different network/schedule silently would corrupt the run, so the
/// caller must choose a fresh directory instead.
pub fn load_latest(
    dir: &Path,
    fingerprint: u64,
) -> Result<(Option<(usize, TrainCheckpoint)>, LoadReport), CheckpointError> {
    let mut report = LoadReport::default();
    for (seq, path) in list(dir)?.into_iter().rev() {
        match load_file(&path) {
            Ok(ckpt) if ckpt.fingerprint == fingerprint => return Ok((Some((seq, ckpt)), report)),
            Ok(ckpt) => {
                return Err(CheckpointError::FingerprintMismatch {
                    expected: fingerprint,
                    found: ckpt.fingerprint,
                    net: ckpt.net,
                })
            }
            Err(e) => {
                eprintln!(
                    "warning: skipping unreadable checkpoint {}: {e}",
                    path.display()
                );
                report.skipped.push((path, e.to_string()));
            }
        }
    }
    Ok((None, report))
}

/// Where, how often, and how durably
/// [`train_grouped`](crate::training::train_grouped) checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Directory the `ckpt-*.mbsckpt` files live in (created on demand).
    pub dir: PathBuf,
    /// Save every `every_steps` training steps; `0` saves only at epoch
    /// boundaries. Epoch boundaries always save regardless.
    pub every_steps: usize,
    /// How many finished checkpoints rotation keeps (minimum 1).
    pub keep: usize,
    /// Whether to resume from the newest matching checkpoint in `dir`
    /// (`false` trains cold but still saves).
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpointing into `dir` with the defaults: epoch-boundary saves
    /// only, keep 3, resume enabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_steps: 0,
            keep: 3,
            resume: true,
        }
    }

    /// Builds a config from the `MBS_CKPT_DIR` / `MBS_CKPT_EVERY`
    /// environment knobs, or `None` when `MBS_CKPT_DIR` is unset.
    /// Malformed values warn and fall back (an unparseable `MBS_CKPT_DIR`
    /// cannot exist — any string is a path; a malformed `MBS_CKPT_EVERY`
    /// falls back to epoch-boundary saves).
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var_os("MBS_CKPT_DIR")?;
        let mut cfg = Self::new(PathBuf::from(dir));
        if let Some(every) = mbs_tensor::env::knob(
            "MBS_CKPT_EVERY",
            "a non-negative step count (0 = epoch boundaries only)",
            |s| s.parse::<usize>().ok(),
        ) {
            cfg.every_steps = every;
        }
        Some(cfg)
    }
}

/// One way a [`FaultPlan`] damages a save (test-only harness; the
/// training loop itself never corrupts files).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The process "dies" after writing the `.tmp` file but before the
    /// rename: the finished checkpoint never appears, the torn `.tmp`
    /// must be ignored by loaders.
    KillMidWrite,
    /// The file appears but its last `n` bytes are missing (header
    /// length check must reject it).
    Truncate(usize),
    /// The file appears with byte `i` (mod length) bit-flipped
    /// (checksum must reject it).
    FlipByte(usize),
}

/// Deterministic fault-injection plan for checkpoint saves.
///
/// `train_grouped` threads each save through
/// [`FaultPlan::apply`]; tests attach faults to specific save indices
/// and a kill point, making "crashed mid-write at save 2, then died
/// after save 3" a reproducible scenario instead of a race.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(save_index, fault)` pairs: the `i`-th save (0-based, counted
    /// across the whole run) suffers `fault`.
    pub faults: Vec<(usize, Fault)>,
    /// Deterministically "kill" the run (return
    /// [`TrainError::Killed`](crate::training::TrainError::Killed))
    /// after this many saves have completed.
    pub kill_after_saves: Option<usize>,
}

impl FaultPlan {
    /// A plan that kills the run after `n` saves, damaging none of them.
    pub fn kill_after(n: usize) -> Self {
        Self {
            faults: Vec::new(),
            kill_after_saves: Some(n),
        }
    }

    /// A plan that applies `fault` to save `index` and never kills.
    pub fn fault_at(index: usize, fault: Fault) -> Self {
        Self {
            faults: vec![(index, fault)],
            kill_after_saves: None,
        }
    }

    /// Performs save number `index` (0-based) of checkpoint `seq` into
    /// `dir`, injecting this plan's fault for that index if any.
    ///
    /// # Errors
    ///
    /// Same as [`save`]; injected damage is not an error (the point is
    /// that *loading* detects it).
    pub fn apply(
        &self,
        index: usize,
        dir: &Path,
        seq: usize,
        ckpt: &TrainCheckpoint,
        keep: usize,
    ) -> Result<(), CheckpointError> {
        let fault = self
            .faults
            .iter()
            .find(|(i, _)| *i == index)
            .map(|&(_, f)| f);
        match fault {
            None => {
                save(dir, seq, ckpt, keep)?;
            }
            Some(Fault::KillMidWrite) => {
                // Write and fsync the tmp file, then "die": no rename.
                fs::create_dir_all(dir)?;
                let tmp = dir.join(format!("{}.tmp", file_name(seq)));
                let mut f = File::create(&tmp)?;
                f.write_all(&encode(ckpt))?;
                f.sync_all()?;
            }
            Some(Fault::Truncate(n)) => {
                let bytes = encode(ckpt);
                let cut = bytes.len().saturating_sub(n.max(1));
                write_atomic(dir, seq, &bytes[..cut])?;
                rotate(dir, keep.max(1))?;
            }
            Some(Fault::FlipByte(i)) => {
                let mut bytes = encode(ckpt);
                let at = i % bytes.len();
                bytes[at] ^= 0x40;
                write_atomic(dir, seq, &bytes)?;
                rotate(dir, keep.max(1))?;
            }
        }
        Ok(())
    }

    /// Whether the run should die now, having completed `saves` saves.
    pub fn should_kill(&self, saves: usize) -> bool {
        self.kill_after_saves.is_some_and(|n| saves >= n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbsckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(fingerprint: u64) -> TrainCheckpoint {
        TrainCheckpoint {
            fingerprint,
            net: "TestNet".into(),
            epoch: 3,
            step_in_epoch: 2,
            loss_sum: 1.25,
            steps: 2,
            rng: vec![1, 2, 3, 4],
            model: vec![StateEntry {
                shape: vec![2, 2],
                data: vec![0.5, -0.25, f32::MIN_POSITIVE, 1.0e10],
            }],
            velocities: vec![StateEntry {
                shape: vec![4],
                data: vec![0.0, -0.0, 0.125, 3.0],
            }],
            curve: vec![EpochStats {
                epoch: 0,
                train_loss: 1.5,
                val_error_pct: 42.0,
                preact_first: 0.25,
                preact_last: -0.5,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trips_bitwise() {
        let ckpt = sample(0xdead_beef);
        let decoded = decode(&encode(&ckpt)).unwrap();
        assert_eq!(decoded, ckpt);
        // PartialEq on f32 treats -0.0 == 0.0; check the sign survived.
        assert_eq!(decoded.velocities[0].data[1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn decode_rejects_damage_with_descriptive_errors() {
        let good = encode(&sample(7));
        // Truncation: header length no longer matches.
        let torn = &good[..good.len() - 5];
        assert!(
            matches!(decode(torn), Err(CheckpointError::Format(msg)) if msg.contains("truncated"))
        );
        // Bit flip in the payload: checksum mismatch.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(
            matches!(decode(&flipped), Err(CheckpointError::Format(msg)) if msg.contains("checksum"))
        );
        // Wrong magic.
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(
            matches!(decode(&magic), Err(CheckpointError::Format(msg)) if msg.contains("magic"))
        );
        // Future version.
        let text = String::from_utf8(good).unwrap();
        let bumped = text.replacen(&format!("{CKPT_MAGIC} 1 "), &format!("{CKPT_MAGIC} 99 "), 1);
        assert!(matches!(
            decode(bumped.as_bytes()),
            Err(CheckpointError::Version(99))
        ));
    }

    #[test]
    fn save_rotates_and_load_latest_picks_newest() {
        let dir = scratch("rotate");
        for seq in 0..5 {
            let mut ckpt = sample(11);
            ckpt.epoch = seq;
            save(&dir, seq, &ckpt, 3).unwrap();
        }
        let kept: Vec<usize> = list(&dir).unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        let (found, report) = load_latest(&dir, 11).unwrap();
        let (seq, ckpt) = found.unwrap();
        assert_eq!((seq, ckpt.epoch), (4, 4));
        assert!(report.is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_falls_back_past_corrupt_newest() {
        let dir = scratch("fallback");
        save(&dir, 0, &sample(5), 3).unwrap();
        // Newest is damaged two different ways; both must be skipped.
        FaultPlan::fault_at(0, Fault::Truncate(10))
            .apply(0, &dir, 1, &sample(5), 3)
            .unwrap();
        FaultPlan::fault_at(0, Fault::FlipByte(40))
            .apply(0, &dir, 2, &sample(5), 3)
            .unwrap();
        let (found, report) = load_latest(&dir, 5).unwrap();
        let (seq, _) = found.unwrap();
        assert_eq!(seq, 0, "must fall back to the oldest intact file");
        // Both damaged files are surfaced, newest first, with reasons.
        assert_eq!(report.skipped.len(), 2);
        assert!(report.skipped[0].0.ends_with("ckpt-00000002.mbsckpt"));
        assert!(report.skipped[0].1.contains("checksum"));
        assert!(report.skipped[1].0.ends_with("ckpt-00000001.mbsckpt"));
        assert!(report.skipped[1].1.contains("truncated"));
        assert!(report.to_string().contains("skipped 2"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tmp_files_are_invisible() {
        let dir = scratch("torn");
        FaultPlan::fault_at(0, Fault::KillMidWrite)
            .apply(0, &dir, 0, &sample(9), 3)
            .unwrap();
        assert!(dir.join("ckpt-00000000.mbsckpt.tmp").exists());
        assert!(list(&dir).unwrap().is_empty());
        let (found, report) = load_latest(&dir, 9).unwrap();
        assert!(found.is_none());
        assert!(report.is_clean(), "tmp files are not skipped checkpoints");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_fingerprint_is_a_hard_error() {
        let dir = scratch("fpr");
        save(&dir, 0, &sample(1), 3).unwrap();
        let err = load_latest(&dir, 2).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::FingerprintMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_a_cold_start() {
        let dir = scratch("missing");
        let (found, report) = load_latest(&dir, 0).unwrap();
        assert!(found.is_none());
        assert!(report.is_clean());
    }
}
