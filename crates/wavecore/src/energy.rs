//! System energy model (paper §4.2 "Power Modeling" and the §6 energy
//! discussion).
//!
//! Energy per training step is the sum of
//!
//! - DRAM access energy (per-byte cost from the memory technology),
//! - global-buffer access energy (8× cheaper than DRAM per the paper §6),
//! - arithmetic energy for the multiply-accumulates actually performed
//!   (WaveCore skips MACs with a zero operand; post-ReLU feature sparsity
//!   makes this significant),
//! - static/leakage energy proportional to execution time.
//!
//! Constants are calibrated so the Baseline configuration reproduces the
//! paper's reported DRAM energy share (~21.6% on ResNet50) and a ~56 W
//! peak (Tab. 2).

use serde::{Deserialize, Serialize};

use mbs_core::MemoryConfig;

/// Energy model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// DRAM energy per byte (8 bits × per-bit cost of the technology).
    pub dram_pj_per_byte: f64,
    /// Global-buffer energy per byte (DRAM ÷ 8, paper §6).
    pub gbuf_pj_per_byte: f64,
    /// Energy of one 16-bit multiply + 32-bit accumulate.
    pub mac_pj: f64,
    /// Fraction of MACs skipped by zero detection (post-ReLU sparsity).
    pub zero_skip_fraction: f64,
    /// Static power of the whole chip in watts.
    pub static_w: f64,
}

impl EnergyParams {
    /// Parameters for a given memory technology.
    pub fn for_memory(memory: &MemoryConfig) -> Self {
        let dram_pj_per_byte = memory.pj_per_bit * 8.0;
        Self {
            dram_pj_per_byte,
            gbuf_pj_per_byte: dram_pj_per_byte / 8.0,
            // Multiplier + 32-bit adder + the operand-forwarding registers
            // each MAC hops through (Fig. 8a's per-PE pipeline).
            mac_pj: 2.5,
            zero_skip_fraction: 0.40,
            static_w: 10.0,
        }
    }
}

/// Energy of one training step, by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// DRAM access energy in joules.
    pub dram_j: f64,
    /// Global-buffer access energy in joules.
    pub gbuf_j: f64,
    /// Arithmetic energy in joules (after zero skipping).
    pub compute_j: f64,
    /// Static/leakage energy in joules.
    pub static_j: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.dram_j + self.gbuf_j + self.compute_j + self.static_j
    }

    /// DRAM share of the total (the paper quotes 21.6% for Baseline,
    /// 8.7% under MBS1 on the deep CNNs).
    pub fn dram_share(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.dram_j / t
        }
    }
}

/// Computes step energy from chip-level totals.
pub fn step_energy(
    dram_bytes: u64,
    gbuf_bytes: u64,
    macs: u64,
    time_s: f64,
    p: &EnergyParams,
) -> EnergyReport {
    EnergyReport {
        dram_j: dram_bytes as f64 * p.dram_pj_per_byte * 1e-12,
        gbuf_j: gbuf_bytes as f64 * p.gbuf_pj_per_byte * 1e-12,
        compute_j: macs as f64 * (1.0 - p.zero_skip_fraction) * p.mac_pj * 1e-12,
        static_j: p.static_w * time_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_core::MemoryKind;

    #[test]
    fn gbuf_is_eight_times_cheaper() {
        let p = EnergyParams::for_memory(&MemoryConfig::preset(MemoryKind::Hbm2));
        assert!((p.dram_pj_per_byte / p.gbuf_pj_per_byte - 8.0).abs() < 1e-9);
    }

    #[test]
    fn energy_components_add_up() {
        let p = EnergyParams::for_memory(&MemoryConfig::preset(MemoryKind::Hbm2));
        let r = step_energy(1 << 30, 1 << 31, 1 << 40, 0.05, &p);
        let total = r.dram_j + r.gbuf_j + r.compute_j + r.static_j;
        assert!((r.total() - total).abs() < 1e-12);
        assert!(r.dram_share() > 0.0 && r.dram_share() < 1.0);
    }

    #[test]
    fn lower_traffic_means_lower_energy() {
        let p = EnergyParams::for_memory(&MemoryConfig::preset(MemoryKind::Hbm2));
        let hi = step_energy(10 << 30, 2 << 30, 1 << 40, 0.05, &p);
        let lo = step_energy(2 << 30, 10 << 30, 1 << 40, 0.05, &p);
        // Moving traffic from DRAM to the 8x-cheaper buffer saves energy.
        assert!(lo.total() < hi.total());
    }
}
