//! Die area and power estimation (paper §4.2 and Tab. 2).
//!
//! Component constants follow the sources the paper cites: a 12,173 µm²
//! PE (24T flip-flops from Kim et al. 2014, FP multiplier/adder from
//! Hickmann et al. 2007), CACTI-style SRAM buffers, Orion 2.0 NoC numbers.

use serde::{Deserialize, Serialize};

/// Per-component area model for one WaveCore chip (two cores).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area of one processing element in µm².
    pub pe_um2: f64,
    /// PEs per core.
    pub pes_per_core: usize,
    /// Global buffer area per core in mm².
    pub gbuf_mm2: f64,
    /// Vector compute units per core in mm².
    pub vector_mm2: f64,
    /// Crossbar, NoC, memory controllers, and I/O for the whole chip in
    /// mm².
    pub interconnect_mm2: f64,
    /// Cores per chip.
    pub cores: usize,
}

impl AreaModel {
    /// The paper's WaveCore at 32 nm.
    pub fn wavecore() -> Self {
        Self {
            pe_um2: 12_173.0,
            pes_per_core: 128 * 128,
            gbuf_mm2: 18.65,
            vector_mm2: 4.33,
            interconnect_mm2: 88.44,
            cores: 2,
        }
    }

    /// PE array area of one core in mm² (paper: 199.45 mm²).
    pub fn pe_array_mm2(&self) -> f64 {
        self.pe_um2 * self.pes_per_core as f64 / 1e6
    }

    /// Total die area in mm² (paper: 534.0 mm²).
    pub fn total_mm2(&self) -> f64 {
        self.cores as f64 * (self.pe_array_mm2() + self.gbuf_mm2 + self.vector_mm2)
            + self.interconnect_mm2
    }
}

/// Peak power model for the chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Energy per MAC in pJ (multiplier + adder at 32 nm).
    pub mac_pj: f64,
    /// Pipeline-register energy per PE per cycle in pJ (24T flip-flops).
    pub regs_pj: f64,
    /// Buffer, NoC, and other dynamic power in watts at peak.
    pub uncore_w: f64,
    /// Static/leakage power in watts.
    pub static_w: f64,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Total PEs on the chip.
    pub pes: usize,
}

impl PowerModel {
    /// The paper's WaveCore (0.7 GHz, 2 × 128×128 PEs).
    pub fn wavecore() -> Self {
        Self {
            mac_pj: 1.1,
            regs_pj: 0.35,
            uncore_w: 6.5,
            static_w: 16.0,
            clock_hz: 0.7e9,
            pes: 2 * 128 * 128,
        }
    }

    /// Peak power in watts with all PEs active every cycle (paper: 56 W).
    pub fn peak_w(&self) -> f64 {
        let dynamic = (self.mac_pj + self.regs_pj) * 1e-12 * self.pes as f64 * self.clock_hz;
        dynamic + self.uncore_w + self.static_w
    }
}

/// One row of the paper's Tab. 2 accelerator comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    /// Device name.
    pub name: String,
    /// Process technology in nm.
    pub technology_nm: u32,
    /// Die area in mm² (0 when not public).
    pub die_area_mm2: f64,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Peak TOPS and the number format.
    pub tops: f64,
    /// Number format of the TOPS figure.
    pub format: String,
    /// Peak power in watts (0 when not public).
    pub peak_power_w: f64,
    /// On-chip buffers in MiB.
    pub on_chip_mib: f64,
}

/// The full Tab. 2: V100, TPU v1, TPU v2, and the modeled WaveCore.
pub fn comparison_table() -> Vec<AcceleratorSpec> {
    let area = AreaModel::wavecore();
    let power = PowerModel::wavecore();
    vec![
        AcceleratorSpec {
            name: "V100".into(),
            technology_nm: 12,
            die_area_mm2: 812.0,
            clock_ghz: 1.53,
            tops: 125.0,
            format: "FP16".into(),
            peak_power_w: 250.0,
            on_chip_mib: 33.0,
        },
        AcceleratorSpec {
            name: "TPU v1".into(),
            technology_nm: 28,
            die_area_mm2: 331.0,
            clock_ghz: 0.7,
            tops: 92.0,
            format: "INT8".into(),
            peak_power_w: 43.0,
            on_chip_mib: 24.0,
        },
        AcceleratorSpec {
            name: "TPU v2".into(),
            technology_nm: 0,
            die_area_mm2: 0.0,
            clock_ghz: 0.7,
            tops: 45.0,
            format: "FP16".into(),
            peak_power_w: 0.0,
            on_chip_mib: 0.0,
        },
        AcceleratorSpec {
            name: "WaveCore".into(),
            technology_nm: 32,
            die_area_mm2: area.total_mm2(),
            clock_ghz: 0.7,
            tops: 45.9,
            format: "FP16".into(),
            peak_power_w: power.peak_w(),
            on_chip_mib: 20.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_array_area_matches_paper() {
        let a = AreaModel::wavecore();
        assert!(
            (a.pe_array_mm2() - 199.45).abs() < 0.1,
            "{}",
            a.pe_array_mm2()
        );
    }

    #[test]
    fn total_die_area_matches_paper() {
        let a = AreaModel::wavecore();
        assert!((a.total_mm2() - 534.0).abs() < 1.0, "{}", a.total_mm2());
    }

    #[test]
    fn peak_power_matches_paper() {
        let p = PowerModel::wavecore();
        assert!((p.peak_w() - 56.0).abs() < 1.5, "{}", p.peak_w());
    }

    #[test]
    fn comparison_table_has_four_rows() {
        let t = comparison_table();
        assert_eq!(t.len(), 4);
        assert_eq!(t[3].name, "WaveCore");
        assert!(t[3].die_area_mm2 < t[0].die_area_mm2); // smaller than V100
    }
}
