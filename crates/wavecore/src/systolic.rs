//! Functional, register-level systolic-array simulator.
//!
//! This is the ground truth behind the analytic cycle model in
//! [`crate::tile`]: it clocks a weight-stationary `k×n` PE grid cycle by
//! cycle — operands move right, partial sums move down, weights are
//! (optionally) double buffered per PE with the select signal traveling
//! alongside the data (paper Fig. 8a) — and produces both the *numerical*
//! GEMM result and the exact cycle count. Tests assert that its results
//! match a reference matrix multiply and that its cycle counts equal the
//! analytic formula.
//!
//! It also counts zero-operand multiplies, which WaveCore skips to save
//! energy (paper §4.1).

use crate::gemm::GemmDims;
use crate::tile::ArrayGeometry;

/// A dense row-major f32 matrix for the functional simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Reference matrix multiply (used by tests to validate the array).
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for kk in 0..self.cols {
                let a = self.get(i, kk);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(kk, j);
                }
            }
        }
        out
    }

    /// Maximum absolute difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Statistics from a functional-array run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total cycles including weight loads, stalls, and drains.
    pub cycles: u64,
    /// Multiply-accumulates issued to PEs.
    pub macs: u64,
    /// MACs skipped because an operand was zero.
    pub zero_skipped: u64,
}

/// One in-flight operand tag: value, output row within the tile, and which
/// weight plane (wave) it multiplies with.
#[derive(Debug, Clone, Copy)]
struct Moving {
    value: f32,
    out_row: usize,
    wave: usize,
}

/// A functional weight-stationary systolic array.
///
/// # Examples
///
/// ```
/// use mbs_wavecore::systolic::{DenseMatrix, FunctionalArray};
/// use mbs_wavecore::tile::ArrayGeometry;
///
/// let geom = ArrayGeometry { rows: 4, cols: 4, tile_rows: 8 };
/// let mut array = FunctionalArray::new(geom, true);
/// let a = DenseMatrix::from_vec(2, 4, (0..8).map(|x| x as f32).collect());
/// let b = DenseMatrix::from_vec(4, 2, (0..8).map(|x| (x % 3) as f32).collect());
/// let c = array.multiply(&a, &b);
/// assert!(c.max_abs_diff(&a.matmul(&b)) < 1e-5);
/// ```
#[derive(Debug)]
pub struct FunctionalArray {
    geom: ArrayGeometry,
    double_buffered: bool,
    stats: RunStats,
}

impl FunctionalArray {
    /// Creates an array with the given geometry and weight-buffering mode.
    pub fn new(geom: ArrayGeometry, double_buffered: bool) -> Self {
        Self {
            geom,
            double_buffered,
            stats: RunStats::default(),
        }
    }

    /// Statistics accumulated since construction (or the last reset).
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Computes `A · B` through the array, tiling per the geometry and
    /// accumulating cycles/MACs into [`Self::stats`].
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn multiply(&mut self, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let dims = GemmDims::new(a.rows(), b.cols(), a.cols());
        let g = self.geom;
        let mut c = DenseMatrix::zeros(dims.gh, dims.gw);

        let mut col = 0;
        while col < dims.gw {
            let n_t = (dims.gw - col).min(g.cols);
            let mut row = 0;
            while row < dims.gh {
                let m_t = (dims.gh - row).min(g.tile_rows);
                self.run_tile(a, b, &mut c, row, m_t, col, n_t);
                row += m_t;
            }
            col += n_t;
        }
        c
    }

    /// Streams one `m_t × n_t` output tile through the array.
    #[allow(clippy::too_many_arguments)]
    fn run_tile(
        &mut self,
        a: &DenseMatrix,
        b: &DenseMatrix,
        c: &mut DenseMatrix,
        row0: usize,
        m_t: usize,
        col0: usize,
        n_t: usize,
    ) {
        let k_phys = self.geom.rows;
        let k_total = a.cols();
        let waves = k_total.div_ceil(k_phys);

        // Weight planes: wave w holds B[w*k .. w*k+k_t, col0..col0+n_t],
        // zero-padded to the physical array.
        let mut planes: Vec<Vec<f32>> = Vec::with_capacity(waves);
        let mut k_ts: Vec<usize> = Vec::with_capacity(waves);
        for w in 0..waves {
            let k_t = (k_total - w * k_phys).min(k_phys);
            k_ts.push(k_t);
            let mut plane = vec![0.0f32; k_phys * n_t];
            for r in 0..k_t {
                for cc in 0..n_t {
                    plane[r * n_t + cc] = b.get(w * k_phys + r, col0 + cc);
                }
            }
            planes.push(plane);
        }

        // Wave start times: baseline reloads weights between waves; double
        // buffering hides the load behind the previous wave's stream.
        let mut starts = Vec::with_capacity(waves);
        let mut t = k_ts[0] as u64; // initial fill
        for w in 0..waves {
            starts.push(t);
            if w + 1 < waves {
                let next_load = k_ts[w + 1] as u64;
                t += if self.double_buffered {
                    m_t as u64 + next_load.saturating_sub(m_t as u64)
                } else {
                    m_t as u64 + next_load
                };
            }
        }
        let last_start = *starts.last().expect("at least one wave");
        let total_t = last_start + m_t as u64 + (k_phys + n_t - 1) as u64;

        // Register planes: operands moving right, partial sums moving down.
        let mut a_regs: Vec<Option<Moving>> = vec![None; k_phys * n_t];
        let mut psums: Vec<f32> = vec![0.0; k_phys * n_t];

        for t in 0..total_t {
            let mut new_a: Vec<Option<Moving>> = vec![None; k_phys * n_t];
            let mut new_p: Vec<f32> = vec![0.0; k_phys * n_t];
            for r in 0..k_phys {
                for cc in 0..n_t {
                    let arriving = if cc == 0 {
                        self.input_at(a, row0, m_t, &starts, t, r)
                    } else {
                        a_regs[r * n_t + cc - 1]
                    };
                    let above = if r == 0 {
                        0.0
                    } else {
                        psums[(r - 1) * n_t + cc]
                    };
                    match arriving {
                        Some(m) => {
                            let w_val = planes[m.wave][r * n_t + cc];
                            self.stats.macs += 1;
                            if m.value == 0.0 || w_val == 0.0 {
                                self.stats.zero_skipped += 1;
                            }
                            new_p[r * n_t + cc] = above + m.value * w_val;
                            new_a[r * n_t + cc] = Some(m);
                        }
                        None => {
                            new_p[r * n_t + cc] = above;
                        }
                    }
                    // Collect finished partial sums at the bottom edge.
                    if r == k_phys - 1 {
                        if let Some(m) = arriving {
                            let prev = c.get(row0 + m.out_row, col0 + cc);
                            c.set(row0 + m.out_row, col0 + cc, prev + new_p[r * n_t + cc]);
                        }
                    }
                }
            }
            a_regs = new_a;
            psums = new_p;
        }
        self.stats.cycles += total_t;
    }

    /// The skewed operand entering physical row `r` at cycle `t`, if any:
    /// wave `w`'s tile row `i` enters row `r` at `starts[w] + i + r`.
    fn input_at(
        &self,
        a: &DenseMatrix,
        row0: usize,
        m_t: usize,
        starts: &[u64],
        t: u64,
        r: usize,
    ) -> Option<Moving> {
        let k_phys = self.geom.rows;
        for (w, &s) in starts.iter().enumerate() {
            let rel = t.checked_sub(s + r as u64)?;
            if (rel as usize) < m_t {
                let i = rel as usize;
                let k_col = w * k_phys + r;
                let value = if k_col < a.cols() {
                    a.get(row0 + i, k_col)
                } else {
                    0.0
                };
                return Some(Moving {
                    value,
                    out_row: i,
                    wave: w,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::gemm_cycles_isolated;

    fn geom(rows: usize, cols: usize, tile_rows: usize) -> ArrayGeometry {
        ArrayGeometry {
            rows,
            cols,
            tile_rows,
        }
    }

    fn filled(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    #[test]
    fn single_wave_matches_reference() {
        let g = geom(4, 4, 8);
        let a = filled(3, 4, |r, c| (r * 4 + c) as f32);
        let b = filled(4, 4, |r, c| ((r + 2 * c) % 5) as f32);
        let mut arr = FunctionalArray::new(g, true);
        let c = arr.multiply(&a, &b);
        assert!(c.max_abs_diff(&a.matmul(&b)) < 1e-5);
    }

    #[test]
    fn multi_wave_multi_tile_matches_reference() {
        let g = geom(4, 3, 5);
        // K = 10 (3 waves), Gh = 12 (3 row tiles), Gw = 7 (3 col strips).
        let a = filled(12, 10, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let b = filled(10, 7, |r, c| ((r * 5 + c) % 7) as f32 - 3.0);
        for db in [false, true] {
            let mut arr = FunctionalArray::new(g, db);
            let c = arr.multiply(&a, &b);
            assert!(c.max_abs_diff(&a.matmul(&b)) < 1e-4, "db={db}");
        }
    }

    #[test]
    fn cycle_counts_match_analytic_model() {
        for (gh, gw, k) in [(5, 4, 4), (8, 3, 10), (12, 7, 9), (3, 9, 17)] {
            let g = geom(4, 3, 5);
            let dims = GemmDims::new(gh, gw, k);
            for db in [false, true] {
                let a = filled(gh, k, |r, c| (r + c) as f32);
                let b = filled(k, gw, |r, c| (r * c % 3) as f32);
                let mut arr = FunctionalArray::new(g, db);
                let _ = arr.multiply(&a, &b);
                let analytic = gemm_cycles_isolated(dims, g, db);
                assert_eq!(arr.stats().cycles, analytic.cycles, "dims {dims:?} db={db}");
            }
        }
    }

    #[test]
    fn double_buffering_is_faster_and_identical() {
        let g = geom(4, 4, 6);
        let a = filled(18, 13, |r, c| ((r + c) % 4) as f32);
        let b = filled(13, 9, |r, c| ((r * 2 + c) % 5) as f32);
        let mut base = FunctionalArray::new(g, false);
        let mut opt = FunctionalArray::new(g, true);
        let cb = base.multiply(&a, &b);
        let co = opt.multiply(&a, &b);
        assert!(cb.max_abs_diff(&co) < 1e-5);
        assert!(opt.stats().cycles < base.stats().cycles);
    }

    #[test]
    fn zero_skip_counts_zero_operands() {
        let g = geom(4, 4, 8);
        let a = DenseMatrix::zeros(4, 4); // all zero operands
        let b = filled(4, 4, |_, _| 1.0);
        let mut arr = FunctionalArray::new(g, true);
        let _ = arr.multiply(&a, &b);
        let s = arr.stats();
        assert_eq!(s.macs, s.zero_skipped);
        assert!(s.macs > 0);
    }

    #[test]
    fn identity_weights_pass_rows_through() {
        let g = geom(4, 4, 8);
        let a = filled(6, 4, |r, c| (r * 4 + c) as f32);
        let eye = filled(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let mut arr = FunctionalArray::new(g, true);
        let c = arr.multiply(&a, &eye);
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let g = geom(4, 4, 8);
        let mut arr = FunctionalArray::new(g, true);
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        let _ = arr.multiply(&a, &b);
    }
}
