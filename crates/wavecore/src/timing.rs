//! Per-layer execution-time model.
//!
//! Convolutions and fully-connected layers run on the systolic array; their
//! compute time comes from the analytic tile/wave cycle model, evaluated
//! per sub-batch iteration (small sub-batches shrink `Gh` and pay more
//! fill/drain overhead — exactly the MBS utilization effect of Fig. 14).
//! Normalization, pooling, activation, and merge layers run on the vector
//! units and are bandwidth bound.
//!
//! Layer time = max(compute, overlappable DRAM time) + serial DRAM time,
//! where the serial component is the weight-gradient partial-sum traffic
//! that the paper notes "cannot be hidden" (§6, MBS-FS discussion).

use serde::{Deserialize, Serialize};

use mbs_core::{HardwareConfig, LayerTraffic};

use crate::gemm::training_gemms;
use crate::tile::{gemm_cycles, ArrayGeometry, CycleReport};

/// Timing of one layer's forward + backward work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTime {
    /// Layer name.
    pub name: String,
    /// Layer-type tag (`conv`, `fc`, `norm`, `pool`, `sum`, `relu`,
    /// `concat`).
    pub tag: String,
    /// Compute time in seconds (systolic cycles or vector-unit time).
    pub compute_s: f64,
    /// Overlappable DRAM transfer time.
    pub dram_s: f64,
    /// Non-overlappable DRAM time (gradient partial sums).
    pub serial_s: f64,
    /// Resulting layer time: `max(compute, dram) + serial`.
    pub time_s: f64,
    /// Systolic cycles (0 for vector layers).
    pub cycles: u64,
    /// Useful MACs on the systolic array (0 for vector layers).
    pub macs: u64,
}

/// Geometry helper from the hardware configuration.
pub fn geometry(hw: &HardwareConfig) -> ArrayGeometry {
    ArrayGeometry {
        rows: hw.array_rows,
        cols: hw.array_cols,
        tile_rows: hw.tile_rows(),
    }
}

/// Computes the systolic cycle total of one layer across all sub-batch
/// iterations (a full mini-batch), honoring the remainder iteration.
pub fn layer_cycles(
    rec: &LayerTraffic,
    batch: usize,
    geom: ArrayGeometry,
    double_buffered: bool,
    is_first: bool,
) -> CycleReport {
    let mut total = CycleReport::default();
    let sub = rec.sub_batch.min(batch).max(1);
    let full_iters = batch / sub;
    let rem = batch % sub;
    for (count, s) in [(full_iters, sub), (usize::from(rem > 0), rem)] {
        if count == 0 || s == 0 {
            continue;
        }
        let mut per_iter = CycleReport::default();
        for dims in training_gemms(&rec.layer, s, is_first) {
            per_iter.add(gemm_cycles(dims, geom, double_buffered));
        }
        total.cycles += per_iter.cycles * count as u64;
        total.macs += per_iter.macs * count as u64;
        total.idle_cycles += per_iter.idle_cycles * count as u64;
    }
    total
}

/// Computes the time of one layer given its traffic record.
pub fn layer_time(
    rec: &LayerTraffic,
    batch: usize,
    hw: &HardwareConfig,
    double_buffered: bool,
    is_first: bool,
) -> LayerTime {
    let dram_bw = hw.per_core_dram_bw();
    let dram_s = (rec.dram_fwd + rec.dram_bwd) as f64 / dram_bw;
    let serial_s = rec.dram_serial as f64 / dram_bw;

    let (compute_s, cycles, macs) = if rec.layer.kind.is_systolic() {
        let rep = layer_cycles(rec, batch, geometry(hw), double_buffered, is_first);
        (rep.cycles as f64 / hw.clock_hz, rep.cycles, rep.macs)
    } else {
        // Vector units: roughly three element passes (forward statistics /
        // apply, backward gradient) bounded by lane throughput and the
        // global-buffer bandwidth that feeds them.
        let ops = 3.0 * rec.layer.forward_macs() as f64 * batch as f64;
        let vec_s = ops / (hw.vector_lanes as f64 * hw.clock_hz);
        let bytes = (rec.gbuf_fwd + rec.gbuf_bwd + rec.dram_fwd + rec.dram_bwd) as f64;
        let gbuf_s = bytes / hw.gbuf_bw_bytes;
        (vec_s.max(gbuf_s), 0, 0)
    };

    let time_s = compute_s.max(dram_s) + serial_s;
    LayerTime {
        name: rec.layer.name.clone(),
        tag: rec.layer.kind.type_tag().to_owned(),
        compute_s,
        dram_s,
        serial_s,
        time_s,
        cycles,
        macs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::networks::resnet;
    use mbs_core::{analyze, ExecConfig, MbsScheduler};

    fn records(cfg: ExecConfig) -> (Vec<LayerTraffic>, usize, HardwareConfig) {
        let net = resnet(50);
        let hw = HardwareConfig::default();
        let s = MbsScheduler::new(&net, &hw, cfg).schedule();
        let t = analyze(&net, &s, hw.global_buffer_bytes);
        (t.layers, s.batch(), hw)
    }

    #[test]
    fn conv_layers_are_systolic_with_macs() {
        let (recs, batch, hw) = records(ExecConfig::ArchOpt);
        let conv = recs.iter().find(|r| r.layer.kind.is_systolic()).unwrap();
        let t = layer_time(conv, batch, &hw, true, true);
        assert!(t.cycles > 0);
        assert!(t.macs > 0);
        assert!(t.compute_s > 0.0);
    }

    #[test]
    fn double_buffering_speeds_up_compute() {
        let (recs, batch, hw) = records(ExecConfig::Baseline);
        let conv = recs.iter().find(|r| r.layer.kind.is_systolic()).unwrap();
        let base = layer_time(conv, batch, &hw, false, false);
        let opt = layer_time(conv, batch, &hw, true, false);
        assert!(opt.cycles < base.cycles);
    }

    #[test]
    fn vector_layers_have_no_cycles() {
        let (recs, batch, hw) = records(ExecConfig::ArchOpt);
        let norm = recs
            .iter()
            .find(|r| r.layer.kind.type_tag() == "norm")
            .unwrap();
        let t = layer_time(norm, batch, &hw, true, false);
        assert_eq!(t.cycles, 0);
        assert!(t.compute_s > 0.0);
    }

    #[test]
    fn serial_time_appears_only_with_iterations() {
        let (recs, batch, hw) = records(ExecConfig::MbsFs);
        let conv = recs
            .iter()
            .find(|r| r.layer.kind.is_systolic() && r.iterations > 1)
            .unwrap();
        let t = layer_time(conv, batch, &hw, true, false);
        assert!(t.serial_s > 0.0);
        assert!((t.time_s - (t.compute_s.max(t.dram_s) + t.serial_s)).abs() < 1e-12);
    }

    #[test]
    fn remainder_iteration_counts_cycles() {
        // sub_batch 5 over batch 8: one full + one remainder iteration.
        let (recs, _, hw) = records(ExecConfig::ArchOpt);
        let conv = recs.iter().find(|r| r.layer.kind.is_systolic()).unwrap();
        let mut rec = conv.clone();
        rec.sub_batch = 5;
        let five_three = layer_cycles(&rec, 8, geometry(&hw), true, false);
        rec.sub_batch = 8;
        let eight = layer_cycles(&rec, 8, geometry(&hw), true, false);
        assert_eq!(five_three.macs, eight.macs);
        assert!(five_three.cycles >= eight.cycles);
    }
}
