//! WaveCore: a systolic-array CNN *training* accelerator simulator
//! (paper §4), plus the V100 roofline comparator used in Fig. 13.
//!
//! The simulator composes:
//!
//! - [`gemm`]: im2col GEMM dimensioning per training phase (Tab. 1),
//! - [`tile`]: the analytic tile/wave cycle model with per-PE weight
//!   double buffering (Fig. 7/8),
//! - [`systolic`]: a functional register-level systolic array that
//!   validates the analytic model on real matrix multiplies,
//! - [`timing`]: per-layer execution time (systolic + vector units,
//!   overlapped with DRAM transfers),
//! - [`energy`]: the DRAM / buffer / arithmetic / static energy model,
//! - [`area`]: die area and peak power (Tab. 2),
//! - [`gpu`]: the V100-class roofline device model,
//! - [`accelerator`]: the [`WaveCore`] top level producing [`StepReport`]s.
//!
//! # Examples
//!
//! ```
//! use mbs_cnn::networks::resnet;
//! use mbs_core::{ExecConfig, HardwareConfig, MemoryKind};
//! use mbs_wavecore::WaveCore;
//!
//! // MBS keeps WaveCore fast even on cheap LPDDR4 memory (paper Fig. 12).
//! let lp = HardwareConfig::default().with_memory(MemoryKind::Lpddr4);
//! let report = WaveCore::new(lp).simulate(&resnet(50), ExecConfig::Mbs2);
//! assert!(report.time_s > 0.0);
//! ```

pub mod accelerator;
pub mod area;
pub mod energy;
pub mod gemm;
pub mod gpu;
pub mod scaling;
pub mod systolic;
pub mod tile;
pub mod timing;

pub use accelerator::{StepReport, WaveCore};
pub use energy::{EnergyParams, EnergyReport};
pub use gemm::{gemm_dims, GemmDims, TrainingPhase};
pub use gpu::GpuModel;
pub use scaling::{weak_scaling, Interconnect, ScalePoint};
pub use systolic::{DenseMatrix, FunctionalArray};
pub use tile::{gemm_cycles, ArrayGeometry, CycleReport};
