//! Roofline model of a training GPU (NVIDIA V100 class) for the paper's
//! Fig. 13 comparison.
//!
//! The paper measured a V100 running Caffe. We model the device from public
//! characteristics: peak FP16 throughput, HBM2 bandwidth, and an
//! efficiency curve that penalizes small GEMMs (layers with little data
//! parallelism cannot fill the wide SM array — the effect the paper calls
//! out when explaining why the gap grows with network depth), plus a fixed
//! per-layer kernel/framework overhead.

use serde::{Deserialize, Serialize};

use mbs_cnn::Network;
use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};

use crate::gemm::{training_gemms, GemmDims};

/// A roofline GPU device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Peak multiply-accumulate throughput (MAC/s). 125 TFLOPS FP16 =
    /// 62.5 T-MAC/s for the V100.
    pub peak_macs_per_s: f64,
    /// Memory bandwidth in bytes/s (V100: 900 GB/s HBM2).
    pub mem_bw_bytes: f64,
    /// Efficiency achieved on large GEMMs (Caffe-era FP16 kernels).
    pub base_efficiency: f64,
    /// GEMM size (MACs) at which efficiency halves; smaller layers
    /// underutilize the device.
    pub half_eff_macs: f64,
    /// Fixed per-layer overhead (kernel launches, framework) in seconds.
    pub layer_overhead_s: f64,
    /// On-chip buffering assumed for inter-layer reuse (L2 + shared
    /// memory + registers; Tab. 2 lists 33 MiB for V100).
    pub on_chip_bytes: usize,
}

impl GpuModel {
    /// An NVIDIA TESLA V100 running a Caffe-class framework.
    pub fn v100() -> Self {
        Self {
            peak_macs_per_s: 62.5e12,
            mem_bw_bytes: 900.0e9,
            base_efficiency: 0.35,
            half_eff_macs: 1.5e9,
            layer_overhead_s: 30.0e-6,
            on_chip_bytes: 33 * 1024 * 1024,
        }
    }

    /// Effective fraction of peak for one GEMM: large-kernel efficiency
    /// scaled down for small total work and for narrow output widths
    /// (GEMMs with few output channels underfill the GPU's wide MMA
    /// tiles — the low-data-parallelism effect the paper cites).
    pub fn efficiency(&self, dims: &GemmDims) -> f64 {
        let m = dims.macs() as f64;
        let size = m / (m + self.half_eff_macs);
        let width = (dims.gw.min(128) as f64 / 128.0).sqrt();
        self.base_efficiency * size * width
    }

    /// Time of one training step over the whole `batch` (the GPU trains
    /// the full chip-level mini-batch as one device).
    ///
    /// Traffic follows the conventional layer-by-layer flow (the GPU has no
    /// MBS), computed by the same traffic model in `InterLayer` mode with
    /// the GPU's on-chip capacity: cuDNN fuses and caches what fits.
    pub fn step_time(&self, net: &Network, batch: usize) -> f64 {
        // A pseudo hardware description carrying the GPU's buffer size for
        // the traffic model; bandwidth fields are unused here.
        let hw = HardwareConfig::default().with_global_buffer(self.on_chip_bytes);
        let schedule = MbsScheduler::new(net, &hw, ExecConfig::InterLayer)
            .with_batch(batch)
            .schedule();
        let traffic = analyze(net, &schedule, self.on_chip_bytes);

        let mut total = 0.0;
        for (i, rec) in traffic.layers.iter().enumerate() {
            let bytes = (rec.dram_fwd + rec.dram_bwd + rec.dram_serial) as f64;
            let mem_s = bytes / self.mem_bw_bytes;
            let compute_s: f64 = training_gemms(&rec.layer, batch, i == 0)
                .iter()
                .map(|d| d.macs() as f64 / (self.peak_macs_per_s * self.efficiency(d)))
                .sum();
            total += compute_s.max(mem_s) + self.layer_overhead_s;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::networks::resnet;

    #[test]
    fn efficiency_grows_with_size_and_width() {
        let gpu = GpuModel::v100();
        let small = GemmDims::new(1 << 10, 256, 1 << 10);
        let large = GemmDims::new(1 << 17, 256, 1 << 17);
        assert!(gpu.efficiency(&small) < gpu.efficiency(&large));
        assert!(gpu.efficiency(&large) <= gpu.base_efficiency);
        let narrow = GemmDims::new(1 << 17, 32, 1 << 17);
        assert!(gpu.efficiency(&narrow) < gpu.efficiency(&large) / 1.5);
    }

    #[test]
    fn v100_resnet50_step_time_is_tens_of_ms() {
        let gpu = GpuModel::v100();
        let t = gpu.step_time(&resnet(50), 64);
        assert!(
            (0.02..0.25).contains(&t),
            "V100 ResNet50 batch-64 step = {t} s"
        );
    }

    #[test]
    fn deeper_networks_take_longer() {
        let gpu = GpuModel::v100();
        let t50 = gpu.step_time(&resnet(50), 64);
        let t152 = gpu.step_time(&resnet(152), 64);
        assert!(t152 > 1.8 * t50, "t50 {t50} t152 {t152}");
    }
}
