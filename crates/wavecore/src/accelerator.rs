//! The top-level WaveCore simulator: schedules a network, runs the traffic
//! and timing models, and produces per-step reports (execution time,
//! energy, DRAM traffic, utilization, per-layer-type breakdowns).

use serde::{Deserialize, Serialize};

use mbs_cnn::Network;
use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler, Schedule, TrafficBreakdown};

use crate::energy::{step_energy, EnergyParams, EnergyReport};
use crate::timing::{layer_time, LayerTime};

/// Simulation result for one training step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Network name.
    pub network: String,
    /// Execution configuration.
    pub config: ExecConfig,
    /// Samples per core (the chip trains `cores ×` this).
    pub batch_per_core: usize,
    /// Number of cores.
    pub cores: usize,
    /// Execution time of one training step in seconds (cores run disjoint
    /// shards in parallel; only loss/gradient reduction is shared).
    pub time_s: f64,
    /// Chip-level DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Chip-level global-buffer traffic in bytes.
    pub gbuf_bytes: u64,
    /// MAC-weighted systolic-array utilization over conv/FC layers,
    /// independent of memory bandwidth (the paper's Fig. 14 isolates
    /// utilization with unlimited DRAM bandwidth).
    pub utilization: f64,
    /// Energy of the step, by component.
    pub energy: EnergyReport,
    /// Per-layer timings in execution order.
    pub layer_times: Vec<LayerTime>,
    /// DRAM traffic by cause (per core).
    pub traffic_breakdown: TrafficBreakdown,
}

impl StepReport {
    /// Total step energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total()
    }

    /// Execution time accumulated per layer-type tag, for the paper's
    /// Fig. 12 breakdown (`conv`, `fc`, `norm`, `pool`, `sum`, ...).
    pub fn time_by_type(&self) -> Vec<(String, f64)> {
        let mut acc: Vec<(String, f64)> = Vec::new();
        for lt in &self.layer_times {
            match acc.iter_mut().find(|(t, _)| *t == lt.tag) {
                Some((_, v)) => *v += lt.time_s,
                None => acc.push((lt.tag.clone(), lt.time_s)),
            }
        }
        acc
    }
}

/// The WaveCore accelerator simulator.
///
/// # Examples
///
/// ```
/// use mbs_cnn::networks::resnet;
/// use mbs_core::{ExecConfig, HardwareConfig};
/// use mbs_wavecore::WaveCore;
///
/// let wc = WaveCore::new(HardwareConfig::default());
/// let report = wc.simulate(&resnet(50), ExecConfig::Mbs2);
/// assert!(report.time_s > 0.0);
/// assert!(report.utilization > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct WaveCore {
    hw: HardwareConfig,
}

impl WaveCore {
    /// Creates a simulator for the given hardware.
    pub fn new(hw: HardwareConfig) -> Self {
        Self { hw }
    }

    /// The hardware configuration.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// Schedules `net` under `config` (with the network's default per-core
    /// mini-batch) and simulates one training step.
    pub fn simulate(&self, net: &Network, config: ExecConfig) -> StepReport {
        let schedule = MbsScheduler::new(net, &self.hw, config).schedule();
        self.simulate_scheduled(net, &schedule)
    }

    /// Like [`WaveCore::simulate`] with an explicit per-core batch size.
    pub fn simulate_with_batch(
        &self,
        net: &Network,
        config: ExecConfig,
        batch: usize,
    ) -> StepReport {
        let schedule = MbsScheduler::new(net, &self.hw, config)
            .with_batch(batch)
            .schedule();
        self.simulate_scheduled(net, &schedule)
    }

    /// Simulates one training step under a pre-built schedule.
    pub fn simulate_scheduled(&self, net: &Network, schedule: &Schedule) -> StepReport {
        let config = schedule.config();
        let traffic = analyze(net, schedule, self.hw.global_buffer_bytes);
        let batch = schedule.batch();
        let db = config.double_buffering();

        let mut layer_times = Vec::with_capacity(traffic.layers.len());
        let mut time_s = 0.0;
        let mut cycles = 0u64;
        let mut macs = 0u64;
        for (i, rec) in traffic.layers.iter().enumerate() {
            let lt = layer_time(rec, batch, &self.hw, db, i == 0);
            time_s += lt.time_s;
            cycles += lt.cycles;
            macs += lt.macs;
            layer_times.push(lt);
        }

        let pes = (self.hw.array_rows * self.hw.array_cols) as f64;
        let utilization = if cycles == 0 {
            0.0
        } else {
            macs as f64 / (cycles as f64 * pes)
        };

        let cores = self.hw.cores as u64;
        let dram_bytes = traffic.dram_bytes() * cores;
        let gbuf_bytes = traffic.gbuf_bytes() * cores;
        let params = EnergyParams::for_memory(&self.hw.memory);
        let energy = step_energy(dram_bytes, gbuf_bytes, macs * cores, time_s, &params);

        StepReport {
            network: net.name().to_owned(),
            config,
            batch_per_core: batch,
            cores: self.hw.cores,
            time_s,
            dram_bytes,
            gbuf_bytes,
            utilization,
            energy,
            layer_times,
            traffic_breakdown: traffic.breakdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::networks::{resnet, toy};

    #[test]
    fn archopt_is_faster_than_baseline() {
        let wc = WaveCore::new(HardwareConfig::default());
        let net = resnet(50);
        let base = wc.simulate(&net, ExecConfig::Baseline);
        let opt = wc.simulate(&net, ExecConfig::ArchOpt);
        assert!(opt.time_s < base.time_s);
        assert!(opt.utilization > base.utilization);
    }

    #[test]
    fn mbs2_is_fastest_on_resnet50() {
        let wc = WaveCore::new(HardwareConfig::default());
        let net = resnet(50);
        let base = wc.simulate(&net, ExecConfig::Baseline);
        let mbs2 = wc.simulate(&net, ExecConfig::Mbs2);
        assert!(
            mbs2.time_s < base.time_s / 1.3,
            "mbs2 {} base {}",
            mbs2.time_s,
            base.time_s
        );
        assert!(mbs2.energy_j() < base.energy_j());
        assert!(mbs2.dram_bytes < base.dram_bytes / 2);
    }

    #[test]
    fn report_time_equals_sum_of_layers() {
        let wc = WaveCore::new(HardwareConfig::default());
        let r = wc.simulate(&toy::tiny_resnet(2, 8), ExecConfig::Mbs1);
        let sum: f64 = r.layer_times.iter().map(|l| l.time_s).sum();
        assert!((sum - r.time_s).abs() < 1e-12);
        let by_type: f64 = r.time_by_type().iter().map(|(_, t)| t).sum();
        assert!((by_type - r.time_s).abs() < 1e-9);
    }

    #[test]
    fn custom_batch_scales_traffic() {
        let wc = WaveCore::new(HardwareConfig::default());
        let net = toy::fig1_toy();
        let small = wc.simulate_with_batch(&net, ExecConfig::Baseline, 4);
        let large = wc.simulate_with_batch(&net, ExecConfig::Baseline, 8);
        assert!(large.dram_bytes > small.dram_bytes);
        assert!(large.time_s > small.time_s);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let wc = WaveCore::new(HardwareConfig::default());
        for cfg in ExecConfig::all() {
            let r = wc.simulate(&toy::tiny_resnet(1, 8), cfg);
            assert!(
                (0.0..=1.0).contains(&r.utilization),
                "{cfg}: {}",
                r.utilization
            );
        }
    }
}
