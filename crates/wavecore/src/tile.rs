//! Analytic cycle model for the systolic array: GEMM tiling, waves, and the
//! inter-wave idle time removed by weight double buffering (paper §4.1,
//! Figs. 7 and 8).
//!
//! A GEMM is blocked into `m×n` output tiles (`n` = array width, `m` =
//! local-buffer rows). Each tile is computed in `ceil(K/k)` waves; a wave
//! pre-loads a `k×n` block of B (weights) and streams `m` rows of A through
//! the array. Without double buffering the array idles for the `k`-cycle
//! weight load between waves; with the extra per-PE register the next
//! wave's weights load *during* the current wave, so a whole tile runs
//! gap-free (modulo short tiles whose stream time cannot cover the load).

use serde::{Deserialize, Serialize};

use crate::gemm::GemmDims;

/// Systolic-array geometry used by the cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Array height `k` (reduction direction).
    pub rows: usize,
    /// Array width `n` (output columns).
    pub cols: usize,
    /// Tile height `m` (rows of A streamed per wave; local-buffer bound).
    pub tile_rows: usize,
}

impl ArrayGeometry {
    /// WaveCore's geometry: 128×128 array, 256-row tiles (64 KiB A buffer).
    pub fn wavecore() -> Self {
        Self {
            rows: 128,
            cols: 128,
            tile_rows: 256,
        }
    }

    /// Number of processing elements.
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }
}

/// Cycle accounting for one GEMM on the systolic array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Total cycles including fills, stalls, and drains.
    pub cycles: u64,
    /// Useful multiply-accumulates.
    pub macs: u64,
    /// Cycles lost to weight loads that compute cannot hide.
    pub idle_cycles: u64,
}

impl CycleReport {
    /// Compute-unit utilization: useful MACs over PE-cycles.
    pub fn utilization(&self, geometry: ArrayGeometry) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles as f64 * geometry.pes() as f64)
    }

    /// Accumulates another report.
    pub fn add(&mut self, other: CycleReport) {
        self.cycles += other.cycles;
        self.macs += other.macs;
        self.idle_cycles += other.idle_cycles;
    }
}

/// Cycles to execute `dims` on the array, with or without weight double
/// buffering.
///
/// Consecutive tiles of one GEMM pipeline through the array back to back:
/// the initial weight fill and the final drain are paid once per GEMM,
/// while per-wave weight loads are paid every wave without double
/// buffering and only when a wave's stream is too short to hide the next
/// load with it (see [`gemm_cycles_isolated`] for the per-tile view the
/// functional simulator reproduces exactly).
///
/// # Examples
///
/// ```
/// use mbs_wavecore::gemm::GemmDims;
/// use mbs_wavecore::tile::{gemm_cycles, ArrayGeometry};
///
/// let g = ArrayGeometry::wavecore();
/// let dims = GemmDims::new(4096, 256, 512);
/// let base = gemm_cycles(dims, g, false);
/// let opt = gemm_cycles(dims, g, true);
/// assert!(opt.cycles < base.cycles); // double buffering removes idle time
/// assert_eq!(opt.macs, base.macs);
/// ```
pub fn gemm_cycles(dims: GemmDims, g: ArrayGeometry, double_buffered: bool) -> CycleReport {
    let mut report = CycleReport::default();
    if dims.gh == 0 || dims.gw == 0 || dims.k == 0 {
        return report;
    }
    // Column folding for narrow GEMMs: when the output width uses at most
    // half the array, several K-blocks are packed side by side and their
    // partial sums reduced in the accumulation buffer, multiplying the
    // reduction depth handled per wave. Each column still shifts its own
    // weights in, so the load time per wave is the per-column depth.
    let fold = if dims.gw * 2 <= g.cols {
        g.cols / dims.gw
    } else {
        1
    };
    let k_per_wave = g.rows * fold;
    let waves = dims.k.div_ceil(k_per_wave);
    let mut first_wave = true;
    let mut prev_stream = 0u64;
    let mut n_last = 0u64;
    let mut col = 0;
    while col < dims.gw {
        let n_t = (dims.gw - col).min(g.cols);
        n_last = ((n_t * fold).min(g.cols)) as u64;
        let mut row = 0;
        while row < dims.gh {
            let m_t = ((dims.gh - row).min(g.tile_rows)) as u64;
            for w in 0..waves {
                let k_chunk = (dims.k - w * k_per_wave).min(k_per_wave);
                let k_t = (k_chunk.div_ceil(fold).min(g.rows)) as u64;
                if double_buffered && !first_wave {
                    // The load ran during the previous wave's stream; any
                    // uncovered remainder stalls the array.
                    let stall = k_t.saturating_sub(prev_stream);
                    report.cycles += stall;
                    report.idle_cycles += stall;
                } else {
                    report.cycles += k_t;
                    report.idle_cycles += k_t;
                }
                report.cycles += m_t;
                prev_stream = m_t;
                first_wave = false;
            }
            row += m_t as usize;
        }
        col += n_t;
    }
    // The last wave's results travel down the physical array and across
    // the used columns.
    let drain = g.rows as u64 + n_last.saturating_sub(1);
    report.cycles += drain;
    report.idle_cycles += drain;
    report.macs = dims.macs();
    report
}

/// Per-GEMM cycles when every tile is processed in isolation (fill and
/// drain paid per tile). This is exactly what [`crate::systolic`]'s
/// register-level simulator does, so tests compare against this composition
/// rather than the pipelined [`gemm_cycles`].
pub fn gemm_cycles_isolated(
    dims: GemmDims,
    g: ArrayGeometry,
    double_buffered: bool,
) -> CycleReport {
    let mut report = CycleReport::default();
    if dims.gh == 0 || dims.gw == 0 || dims.k == 0 {
        return report;
    }
    let waves = dims.k.div_ceil(g.rows);
    let mut col = 0;
    while col < dims.gw {
        let n_t = (dims.gw - col).min(g.cols);
        let mut row = 0;
        while row < dims.gh {
            let m_t = (dims.gh - row).min(g.tile_rows);
            report.add(tile_cycles_isolated(
                dims.k,
                waves,
                m_t,
                n_t,
                g,
                double_buffered,
            ));
            row += m_t;
        }
        col += n_t;
    }
    report.macs = dims.macs();
    report
}

/// Cycle count of one isolated `m_t × n_t` tile (fill + waves + drain).
fn tile_cycles_isolated(
    k_total: usize,
    waves: usize,
    m_t: usize,
    n_t: usize,
    g: ArrayGeometry,
    double_buffered: bool,
) -> CycleReport {
    let mut cycles = 0u64;
    let mut idle = 0u64;
    for w in 0..waves {
        let k_t = (k_total - w * g.rows).min(g.rows) as u64;
        if double_buffered {
            if w == 0 {
                // Initial fill of the first weight block.
                cycles += k_t;
                idle += k_t;
            } else {
                // The next block loaded during the previous wave's stream;
                // any part the stream could not cover stalls the array.
                let stall = k_t.saturating_sub(m_t as u64);
                cycles += stall;
                idle += stall;
            }
            cycles += m_t as u64;
        } else {
            // Weight shift-in serializes with compute every wave (Fig. 8b
            // top).
            cycles += k_t + m_t as u64;
            idle += k_t;
        }
    }
    // Pipeline drain: the last input row's partial sums travel down the
    // array's physical height and across the tile's columns.
    let drain = (g.rows + n_t - 1) as u64;
    cycles += drain;
    idle += drain;
    CycleReport {
        cycles,
        macs: 0,
        idle_cycles: idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> ArrayGeometry {
        ArrayGeometry::wavecore()
    }

    #[test]
    fn full_tile_utilization_bounds() {
        // One full tile, K = 4 waves: baseline utilization ~ m/(m+k).
        let dims = GemmDims::new(256, 128, 512);
        let base = gemm_cycles(dims, g(), false);
        let expect = 4 * (128 + 256) + (128 + 128 - 1);
        assert_eq!(base.cycles, expect as u64);
        let opt = gemm_cycles(dims, g(), true);
        assert_eq!(opt.cycles, (128 + 4 * 256 + 255) as u64);
        assert!(opt.utilization(g()) > base.utilization(g()));
    }

    #[test]
    fn double_buffering_never_slower() {
        for (gh, gw, k) in [
            (100, 64, 64),
            (1000, 256, 576),
            (9, 1000, 4608),
            (64, 4096, 9216),
        ] {
            let dims = GemmDims::new(gh, gw, k);
            let base = gemm_cycles(dims, g(), false);
            let opt = gemm_cycles(dims, g(), true);
            assert!(opt.cycles <= base.cycles, "{dims:?}");
            assert_eq!(opt.macs, base.macs);
        }
    }

    #[test]
    fn short_tiles_still_stall_with_double_buffering() {
        // m_t = 9 rows cannot hide a 128-cycle weight load.
        let dims = GemmDims::new(9, 128, 512);
        let opt = gemm_cycles(dims, g(), true);
        // waves = 4: fill 128 + 3 stalls of (128-9) + 4*9 + drain 255
        assert_eq!(opt.cycles, 128 + 3 * 119 + 4 * 9 + 255);
    }

    #[test]
    fn utilization_approaches_one_for_huge_gemms() {
        let dims = GemmDims::new(1 << 16, 1 << 11, 1 << 12);
        let opt = gemm_cycles(dims, g(), true);
        assert!(opt.utilization(g()) > 0.95, "{}", opt.utilization(g()));
    }

    #[test]
    fn empty_gemm_is_free() {
        let r = gemm_cycles(GemmDims::new(0, 128, 128), g(), true);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.macs, 0);
    }

    #[test]
    fn idle_fraction_shrinks_with_double_buffering() {
        let dims = GemmDims::new(4096, 512, 1024);
        let base = gemm_cycles(dims, g(), false);
        let opt = gemm_cycles(dims, g(), true);
        // Double buffering removes the 8 per-wave loads; only the initial
        // fill and the pipeline drain remain.
        assert!(opt.idle_cycles < base.idle_cycles / 2);
    }
}
