//! im2col GEMM dimensioning for CNN training (paper Tab. 1).
//!
//! WaveCore lowers every convolution to a general matrix multiply via
//! im2col. Each training step runs up to three GEMMs per convolution:
//! forward, data gradient, and weight gradient, with dimensions:
//!
//! | Phase           | Gh            | Gw  | K             |
//! |-----------------|---------------|-----|---------------|
//! | Forward         | N · Ho · Wo   | Co  | Ci · R · S    |
//! | Data gradient   | N · Hi · Wi   | Ci  | Co · R · S    |
//! | Weight gradient | Ci · R · S    | Co  | N · Ho · Wo   |

use serde::{Deserialize, Serialize};

use mbs_cnn::{Layer, LayerKind};

/// The three GEMMs of one convolution/FC training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrainingPhase {
    /// Output = input ∗ weights.
    Forward,
    /// dInput = dOutput ∗ weightsᵀ.
    DataGradient,
    /// dWeights = inputᵀ ∗ dOutput.
    WeightGradient,
}

impl TrainingPhase {
    /// All three phases in execution order.
    pub fn all() -> [TrainingPhase; 3] {
        [
            TrainingPhase::Forward,
            TrainingPhase::DataGradient,
            TrainingPhase::WeightGradient,
        ]
    }
}

/// Dimensions of one im2col GEMM: `(Gh × K) · (K × Gw)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmDims {
    /// Output rows.
    pub gh: usize,
    /// Output columns.
    pub gw: usize,
    /// Reduction depth.
    pub k: usize,
}

impl GemmDims {
    /// Creates GEMM dimensions.
    pub fn new(gh: usize, gw: usize, k: usize) -> Self {
        Self { gh, gw, k }
    }

    /// Multiply-accumulate count of the GEMM.
    pub fn macs(&self) -> u64 {
        self.gh as u64 * self.gw as u64 * self.k as u64
    }
}

/// GEMM dimensions for a systolic-array layer in a given phase with
/// `sub_batch` samples, or `None` for non-systolic layers.
///
/// # Examples
///
/// ```
/// use mbs_cnn::{FeatureShape, Layer};
/// use mbs_wavecore::gemm::{gemm_dims, TrainingPhase};
///
/// # fn main() -> Result<(), mbs_cnn::ShapeError> {
/// let conv = Layer::conv("c", FeatureShape::new(64, 56, 56), 64, 3, 1, 1)?;
/// let d = gemm_dims(&conv, TrainingPhase::Forward, 4).unwrap();
/// assert_eq!((d.gh, d.gw, d.k), (4 * 56 * 56, 64, 64 * 3 * 3));
/// # Ok(())
/// # }
/// ```
pub fn gemm_dims(layer: &Layer, phase: TrainingPhase, sub_batch: usize) -> Option<GemmDims> {
    match layer.kind {
        LayerKind::Conv {
            kernel_h, kernel_w, ..
        } => {
            let (ci, co) = (layer.input.channels, layer.output.channels);
            let rs = kernel_h * kernel_w;
            let out_hw = layer.output.height * layer.output.width;
            let in_hw = layer.input.height * layer.input.width;
            Some(match phase {
                TrainingPhase::Forward => GemmDims::new(sub_batch * out_hw, co, ci * rs),
                TrainingPhase::DataGradient => GemmDims::new(sub_batch * in_hw, ci, co * rs),
                TrainingPhase::WeightGradient => GemmDims::new(ci * rs, co, sub_batch * out_hw),
            })
        }
        LayerKind::FullyConnected => {
            let (i, o) = (layer.input.elems(), layer.output.channels);
            Some(match phase {
                TrainingPhase::Forward => GemmDims::new(sub_batch, o, i),
                TrainingPhase::DataGradient => GemmDims::new(sub_batch, i, o),
                TrainingPhase::WeightGradient => GemmDims::new(i, o, sub_batch),
            })
        }
        _ => None,
    }
}

/// All training GEMMs of a layer for one sub-batch iteration.
///
/// The first network layer (`is_first = true`) skips the data-gradient
/// GEMM: no gradient with respect to the input samples is needed.
pub fn training_gemms(layer: &Layer, sub_batch: usize, is_first: bool) -> Vec<GemmDims> {
    TrainingPhase::all()
        .into_iter()
        .filter(|p| !(is_first && *p == TrainingPhase::DataGradient))
        .filter_map(|p| gemm_dims(layer, p, sub_batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::FeatureShape;

    fn conv() -> Layer {
        Layer::conv("c", FeatureShape::new(64, 56, 56), 128, 3, 2, 1).unwrap()
    }

    #[test]
    fn forward_dims_match_tab1() {
        let d = gemm_dims(&conv(), TrainingPhase::Forward, 8).unwrap();
        assert_eq!(d, GemmDims::new(8 * 28 * 28, 128, 64 * 9));
    }

    #[test]
    fn data_gradient_dims_match_tab1() {
        let d = gemm_dims(&conv(), TrainingPhase::DataGradient, 8).unwrap();
        assert_eq!(d, GemmDims::new(8 * 56 * 56, 64, 128 * 9));
    }

    #[test]
    fn weight_gradient_dims_match_tab1() {
        let d = gemm_dims(&conv(), TrainingPhase::WeightGradient, 8).unwrap();
        assert_eq!(d, GemmDims::new(64 * 9, 128, 8 * 28 * 28));
    }

    #[test]
    fn forward_and_weight_gradient_macs_match() {
        // Both multiply the same three extents, so MAC counts agree.
        let f = gemm_dims(&conv(), TrainingPhase::Forward, 4).unwrap();
        let w = gemm_dims(&conv(), TrainingPhase::WeightGradient, 4).unwrap();
        assert_eq!(f.macs(), w.macs());
    }

    #[test]
    fn forward_macs_match_layer_macs() {
        let l = conv();
        let d = gemm_dims(&l, TrainingPhase::Forward, 1).unwrap();
        assert_eq!(d.macs(), l.forward_macs() as u64);
    }

    #[test]
    fn fc_dims() {
        let fc = Layer::fully_connected("fc", FeatureShape::vector(2048), 1000);
        let d = gemm_dims(&fc, TrainingPhase::Forward, 16).unwrap();
        assert_eq!(d, GemmDims::new(16, 1000, 2048));
    }

    #[test]
    fn non_systolic_layers_have_no_gemm() {
        let r = Layer::relu("r", FeatureShape::new(8, 8, 8));
        assert!(gemm_dims(&r, TrainingPhase::Forward, 4).is_none());
    }

    #[test]
    fn first_layer_skips_data_gradient() {
        let all = training_gemms(&conv(), 4, false);
        let first = training_gemms(&conv(), 4, true);
        assert_eq!(all.len(), 3);
        assert_eq!(first.len(), 2);
    }
}
