//! Multi-accelerator scaling (paper §4.2 "Scalability").
//!
//! The paper notes that compute throughput scales by distributing larger
//! mini-batches across accelerators or cores, with each device running MBS
//! locally and communicating only for loss computation and parameter
//! reduction/update. This module models that data-parallel regime: per-step
//! time = local MBS step time + an all-reduce of the weight gradients over
//! an inter-accelerator link.

use serde::{Deserialize, Serialize};

use mbs_cnn::Network;
use mbs_core::{ExecConfig, HardwareConfig};

use crate::accelerator::WaveCore;

/// Inter-accelerator interconnect description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Per-device link bandwidth in bytes/s.
    pub link_bw_bytes: f64,
    /// Per-step synchronization latency in seconds.
    pub latency_s: f64,
}

impl Interconnect {
    /// A PCIe-3 x16-class link (~12 GB/s effective).
    pub fn pcie3() -> Self {
        Self {
            link_bw_bytes: 12.0e9,
            latency_s: 20.0e-6,
        }
    }

    /// A proprietary accelerator fabric (~100 GB/s, NVLink/ICI-class).
    pub fn fabric() -> Self {
        Self {
            link_bw_bytes: 100.0e9,
            latency_s: 5.0e-6,
        }
    }
}

/// One point of a scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Number of accelerators.
    pub devices: usize,
    /// Global mini-batch (devices × chip batch).
    pub global_batch: usize,
    /// Per-step time in seconds (compute + all-reduce).
    pub time_s: f64,
    /// All-reduce time in seconds.
    pub allreduce_s: f64,
    /// Throughput in samples per second.
    pub samples_per_s: f64,
    /// Parallel efficiency vs a single device.
    pub efficiency: f64,
}

/// Models weak-scaling of MBS training: each added device trains another
/// chip-sized shard, and a ring all-reduce of the weight gradients
/// (`2·(n−1)/n` of the parameter bytes over the link) synchronizes steps.
///
/// # Examples
///
/// ```
/// use mbs_cnn::networks::resnet;
/// use mbs_core::{ExecConfig, HardwareConfig};
/// use mbs_wavecore::scaling::{weak_scaling, Interconnect};
///
/// let points = weak_scaling(
///     &resnet(50), ExecConfig::Mbs2, &HardwareConfig::default(),
///     Interconnect::fabric(), &[1, 2, 4, 8],
/// );
/// assert!(points[3].efficiency > 0.8); // near-linear weak scaling
/// ```
pub fn weak_scaling(
    net: &Network,
    config: ExecConfig,
    hw: &HardwareConfig,
    link: Interconnect,
    device_counts: &[usize],
) -> Vec<ScalePoint> {
    let wc = WaveCore::new(*hw);
    let local = wc.simulate(net, config);
    let chip_batch = local.batch_per_core * hw.cores;
    let param_bytes = net.param_elems() as f64 * mbs_cnn::WORD_BYTES as f64;

    device_counts
        .iter()
        .map(|&n| {
            let allreduce_s = if n > 1 {
                // Ring all-reduce: 2(n-1)/n of the gradient volume crosses
                // each link, plus latency per step.
                2.0 * (n as f64 - 1.0) / n as f64 * param_bytes / link.link_bw_bytes
                    + link.latency_s
            } else {
                0.0
            };
            let time_s = local.time_s + allreduce_s;
            let global_batch = chip_batch * n;
            let samples_per_s = global_batch as f64 / time_s;
            let single = chip_batch as f64 / local.time_s;
            ScalePoint {
                devices: n,
                global_batch,
                time_s,
                allreduce_s,
                samples_per_s,
                efficiency: samples_per_s / (single * n as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::networks::resnet;

    fn points(link: Interconnect) -> Vec<ScalePoint> {
        weak_scaling(
            &resnet(50),
            ExecConfig::Mbs2,
            &HardwareConfig::default(),
            link,
            &[1, 2, 4, 8, 16],
        )
    }

    #[test]
    fn single_device_has_no_communication() {
        let p = points(Interconnect::fabric());
        assert_eq!(p[0].devices, 1);
        assert_eq!(p[0].allreduce_s, 0.0);
        assert!((p[0].efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_grows_with_devices() {
        let p = points(Interconnect::fabric());
        for w in p.windows(2) {
            assert!(w[1].samples_per_s > w[0].samples_per_s);
        }
    }

    #[test]
    fn efficiency_degrades_monotonically_but_stays_high_on_fabric() {
        let p = points(Interconnect::fabric());
        for w in p.windows(2) {
            assert!(w[1].efficiency <= w[0].efficiency + 1e-12);
        }
        assert!(
            p.last().unwrap().efficiency > 0.9,
            "{}",
            p.last().unwrap().efficiency
        );
    }

    #[test]
    fn slow_links_cost_more() {
        let fast = points(Interconnect::fabric());
        let slow = points(Interconnect::pcie3());
        assert!(slow[4].efficiency < fast[4].efficiency);
    }

    #[test]
    fn global_batch_tracks_devices() {
        let p = points(Interconnect::fabric());
        assert_eq!(p[2].global_batch, p[0].global_batch * 4);
    }
}
