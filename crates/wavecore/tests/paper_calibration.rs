//! Integration probes pinning the *shape* of the paper's Figs. 10a/10b,
//! 13 and 14 (who wins, by roughly what factor).

use mbs_cnn::networks::{alexnet, inception_v3, resnet};
use mbs_core::{ExecConfig, HardwareConfig, MemoryKind};
use mbs_wavecore::{GpuModel, WaveCore};

#[test]
fn fig10a_resnet50_speedups() {
    let wc = WaveCore::new(HardwareConfig::default());
    let net = resnet(50);
    let times: Vec<(ExecConfig, f64)> = ExecConfig::all()
        .into_iter()
        .map(|c| (c, wc.simulate(&net, c).time_s))
        .collect();
    let base = times[0].1;
    let arch = times[1].1;
    for (c, t) in &times {
        println!(
            "ResNet50 {c}: {:.2} ms  speedup vs base {:.2} vs archopt {:.2}",
            t * 1e3,
            base / t,
            arch / t
        );
    }
    let get = |c: ExecConfig| times.iter().find(|(k, _)| *k == c).unwrap().1;
    // Paper: ArchOpt 1.09, IL 1.21, MBS-FS 1.60, MBS1 1.77, MBS2 1.81 (vs
    // Baseline).
    assert!(base / get(ExecConfig::ArchOpt) > 1.03);
    assert!(base / get(ExecConfig::Mbs1) > 1.4);
    assert!(base / get(ExecConfig::Mbs2) > 1.5);
    assert!(get(ExecConfig::Mbs2) <= get(ExecConfig::Mbs1) * 1.001);
}

#[test]
fn fig10b_resnet50_energy() {
    let wc = WaveCore::new(HardwareConfig::default());
    let net = resnet(50);
    let base = wc.simulate(&net, ExecConfig::Baseline);
    for c in ExecConfig::all() {
        let r = wc.simulate(&net, c);
        println!(
            "ResNet50 {c}: {:.2} J  ratio {:.3}  dram-share {:.3}",
            r.energy_j(),
            r.energy_j() / base.energy_j(),
            r.energy.dram_share()
        );
    }
    // Paper: Baseline DRAM share 21.6%, MBS1 8.7%; MBS2 energy 0.70x. Our
    // energy model attributes a larger share to DRAM (we do not model the
    // paper's flip-flop/NoC dynamic energy in the per-step accounting), so
    // the acceptance band is wider; the orderings and savings magnitudes
    // hold.
    let share = base.energy.dram_share();
    assert!((0.12..0.45).contains(&share), "baseline dram share {share}");
    let mbs2 = wc.simulate(&net, ExecConfig::Mbs2);
    let ratio = mbs2.energy_j() / base.energy_j();
    assert!((0.55..0.9).contains(&ratio), "mbs2 energy ratio {ratio}");
}

#[test]
fn fig14_utilization() {
    let wc = WaveCore::new(HardwareConfig::default());
    for net in [resnet(50), inception_v3(), alexnet()] {
        for c in [
            ExecConfig::Baseline,
            ExecConfig::ArchOpt,
            ExecConfig::MbsFs,
            ExecConfig::Mbs1,
            ExecConfig::Mbs2,
        ] {
            let r = wc.simulate(&net, c);
            println!("{} {c}: util {:.3}", net.name(), r.utilization);
        }
    }
    // Paper averages: Baseline 53.8%, ArchOpt 81.5%, MBS-FS 66.7%,
    // MBS1/MBS2 78.6%.
    let net = resnet(50);
    let base = wc.simulate(&net, ExecConfig::Baseline).utilization;
    let arch = wc.simulate(&net, ExecConfig::ArchOpt).utilization;
    let fs = wc.simulate(&net, ExecConfig::MbsFs).utilization;
    let mbs2 = wc.simulate(&net, ExecConfig::Mbs2).utilization;
    assert!((0.40..0.70).contains(&base), "baseline util {base}");
    assert!(arch > base + 0.1, "archopt util {arch}");
    assert!(
        fs < arch,
        "fs {fs} should lose utilization vs archopt {arch}"
    );
    assert!(mbs2 > fs, "mbs2 {mbs2} regains utilization over fs {fs}");
}

#[test]
fn fig13_v100_comparison() {
    let gpu = GpuModel::v100();
    for kind in [MemoryKind::Hbm2X2, MemoryKind::Gddr5, MemoryKind::Lpddr4] {
        let hw = HardwareConfig::default().with_memory(kind);
        let wc = WaveCore::new(hw);
        for net in [resnet(50), resnet(152)] {
            let w = wc.simulate(&net, ExecConfig::Mbs2);
            let v = gpu.step_time(&net, net.default_batch() * 2);
            println!(
                "{} {kind:?}: wavecore {:.1} ms, V100 {:.1} ms, speedup {:.2}",
                net.name(),
                w.time_s * 1e3,
                v * 1e3,
                v / w.time_s
            );
        }
    }
    // Paper: WaveCore+MBS2 beats V100 by 1.06-1.27x across memories.
    let wc = WaveCore::new(HardwareConfig::default().with_memory(MemoryKind::Hbm2X2));
    let net = resnet(50);
    let w = wc.simulate(&net, ExecConfig::Mbs2);
    let v = gpu.step_time(&net, 64);
    let speedup = v / w.time_s;
    assert!((1.0..1.6).contains(&speedup), "speedup over V100 {speedup}");
}
