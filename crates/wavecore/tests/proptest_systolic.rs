//! Property-based validation of the functional systolic array against the
//! reference matmul and the analytic cycle model.

use proptest::prelude::*;

use mbs_wavecore::gemm::GemmDims;
use mbs_wavecore::systolic::{DenseMatrix, FunctionalArray};
use mbs_wavecore::tile::{gemm_cycles, gemm_cycles_isolated, ArrayGeometry};

fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|v| ((v as u64 * 31 + seed * 17) % 15) as f32 - 7.0)
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The register-level array computes exactly A·B for any geometry and
    /// buffering mode.
    #[test]
    fn functional_array_matches_reference(
        gh in 1usize..12,
        gw in 1usize..10,
        k in 1usize..14,
        rows in 2usize..6,
        cols in 2usize..6,
        tile_rows in 2usize..8,
        db in proptest::bool::ANY,
        seed_a in 0u64..1000,
    ) {
        let geom = ArrayGeometry { rows, cols, tile_rows };
        let a = seeded_matrix(gh, k, seed_a);
        let b = seeded_matrix(k, gw, seed_a.wrapping_add(99));
        let mut arr = FunctionalArray::new(geom, db);
        let c = arr.multiply(&a, &b);
        prop_assert!(c.max_abs_diff(&a.matmul(&b)) < 1e-3);
    }

    /// The functional simulator's cycle count equals the isolated-tile
    /// analytic composition exactly.
    #[test]
    fn functional_cycles_match_isolated_analytic(
        gh in 1usize..12,
        gw in 1usize..10,
        k in 1usize..14,
        rows in 2usize..6,
        cols in 2usize..6,
        tile_rows in 2usize..8,
        db in proptest::bool::ANY,
    ) {
        let geom = ArrayGeometry { rows, cols, tile_rows };
        let a = DenseMatrix::zeros(gh, k);
        let b = DenseMatrix::zeros(k, gw);
        let mut arr = FunctionalArray::new(geom, db);
        let _ = arr.multiply(&a, &b);
        let analytic = gemm_cycles_isolated(GemmDims::new(gh, gw, k), geom, db);
        prop_assert_eq!(arr.stats().cycles, analytic.cycles);
    }

    /// The pipelined GEMM model is never slower than the isolated-tile
    /// model, never reports more useful MACs than PE-cycles, and double
    /// buffering never loses.
    #[test]
    fn analytic_model_invariants(
        gh in 1usize..4000,
        gw in 1usize..600,
        k in 1usize..2000,
    ) {
        let g = ArrayGeometry::wavecore();
        let dims = GemmDims::new(gh, gw, k);
        for db in [false, true] {
            let piped = gemm_cycles(dims, g, db);
            let isolated = gemm_cycles_isolated(dims, g, db);
            prop_assert!(piped.cycles <= isolated.cycles);
            prop_assert!(piped.macs <= piped.cycles * g.pes() as u64);
            prop_assert_eq!(piped.macs, dims.macs());
        }
        let base = gemm_cycles(dims, g, false);
        let opt = gemm_cycles(dims, g, true);
        prop_assert!(opt.cycles <= base.cycles);
    }

    /// Zero-skip counting never exceeds the MACs issued; an all-zero A
    /// skips everything, and a dense A with K filling the array exactly
    /// skips nothing (K-padding lanes legitimately count as skipped, so K
    /// is kept a multiple of the array height here).
    #[test]
    fn zero_skip_bounded(
        gh in 1usize..8,
        k4 in 1usize..3,
        zero_rows in proptest::bool::ANY,
    ) {
        let k = 4 * k4; // multiple of the array height: no padded lanes
        let geom = ArrayGeometry { rows: 4, cols: 4, tile_rows: 4 };
        let a = if zero_rows {
            DenseMatrix::zeros(gh, k)
        } else {
            DenseMatrix::from_vec(gh, k, (0..gh * k).map(|v| v as f32 + 1.0).collect())
        };
        let b = DenseMatrix::from_vec(k, 4, (0..k * 4).map(|v| v as f32 + 1.0).collect());
        let mut arr = FunctionalArray::new(geom, true);
        let _ = arr.multiply(&a, &b);
        let s = arr.stats();
        prop_assert!(s.zero_skipped <= s.macs);
        if zero_rows {
            prop_assert_eq!(s.zero_skipped, s.macs);
        } else {
            prop_assert_eq!(s.zero_skipped, 0);
        }
    }
}
