//! Serve-side fault injection — the chaos-test harness.
//!
//! The PR-6 [`FaultPlan`](mbs_train::FaultPlan) made checkpoint damage a
//! deterministic, scriptable event instead of a race; [`ServeFaultPlan`]
//! extends the same discipline into the serving path. A plan names the
//! **global dispatch indices** (every batch any worker dispatches
//! increments one shared counter) at which a worker should panic — the
//! poison pill that exercises supervision — or stall, simulating a slow
//! or wedged worker. Corrupt *swap* files need no hook here: tests damage
//! checkpoint bytes on disk the same way the PR-6 fault kinds do, and the
//! swap path's load validation must refuse them.
//!
//! Plans are inert by default ([`ServeFaultPlan::default`] injects
//! nothing) and servers started via
//! [`Server::start`](crate::Server::start) carry an empty plan — the
//! production path never consults a non-trivial plan.

use std::time::Duration;

/// Deterministic fault script for a running server (test-only harness;
/// the serving loop itself never fails on purpose in production).
///
/// # Examples
///
/// ```
/// use mbs_serve::ServeFaultPlan;
///
/// // Panic while dispatching batches 2 and 5, stall batch 3 for 1 ms.
/// let plan = ServeFaultPlan::default()
///     .panic_at(2)
///     .panic_at(5)
///     .stall_at(3, core::time::Duration::from_millis(1));
/// assert!(plan.should_panic(2) && plan.should_panic(5));
/// assert!(!plan.should_panic(3));
/// assert_eq!(plan.stall_for(3), Some(core::time::Duration::from_millis(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    /// Global dispatch indices (0-based) at which the dispatching worker
    /// panics *after* assembling the batch but before running inference —
    /// every request in the doomed batch must still be answered.
    pub panic_at_batches: Vec<u64>,
    /// `(dispatch index, stall)` pairs: the dispatching worker sleeps
    /// this long before running the batch, simulating a slow worker.
    pub stalls: Vec<(u64, Duration)>,
}

impl ServeFaultPlan {
    /// Adds a worker panic at dispatch index `batch`.
    #[must_use]
    pub fn panic_at(mut self, batch: u64) -> Self {
        self.panic_at_batches.push(batch);
        self
    }

    /// Adds a `stall`-long sleep at dispatch index `batch`.
    #[must_use]
    pub fn stall_at(mut self, batch: u64, stall: Duration) -> Self {
        self.stalls.push((batch, stall));
        self
    }

    /// Whether this plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panic_at_batches.is_empty() && self.stalls.is_empty()
    }

    /// Whether the worker dispatching batch `index` should panic.
    pub fn should_panic(&self, index: u64) -> bool {
        self.panic_at_batches.contains(&index)
    }

    /// How long the worker dispatching batch `index` should stall first.
    pub fn stall_for(&self, index: u64) -> Option<Duration> {
        self.stalls
            .iter()
            .find(|&&(i, _)| i == index)
            .map(|&(_, d)| d)
    }
}
