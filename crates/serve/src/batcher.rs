//! Dynamic-batch sizing policy and the admission-controlled queue.
//!
//! A batch dispatches when it is **full** (at the effective max batch) or
//! when the **oldest waiting request hits the max-wait deadline** —
//! whichever comes first. The effective max batch is the smaller of the
//! configured limit and the cache-budget bound: the same per-sample
//! footprint model the scheduler uses
//! ([`mbs_core::footprint::max_sub_batch`]) applied to the serving
//! [`HardwareConfig`](mbs_core::HardwareConfig) budget, so a dynamic batch
//! never outgrows the on-chip buffer MBS sizes work against.
//!
//! [`ShedQueue`] is the overload side of the same discipline: a bounded
//! priority queue whose non-blocking admission ([`ShedQueue::offer`])
//! sheds the **most-expired, then lowest-priority** queued request to
//! admit more important work, and rejects the incoming request when
//! nothing queued is less important. Collectors harvest expired requests
//! ([`ShedQueue::take_expired`]) *before* batching, so a request past its
//! deadline never wastes a forward pass.
//!
//! Policy and queue are both pure — plain integers for sizes and
//! priorities, microsecond timestamps (`u128`) for time — so the worker
//! loop and the property-test simulations drive the exact same
//! arithmetic, the former from [`std::time::Instant`] deltas and the
//! latter from virtual clocks.

use mbs_core::footprint;

/// Ceiling on the budget-derived batch cap, so footprint-free models
/// (`per_sample_bytes == 0`) still get a finite batch size.
const MAX_BATCH_CEILING: usize = 1024;

/// When a partially filled batch must stop waiting and dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch the policy ever assembles (already clamped to the
    /// cache-budget bound by [`BatchPolicy::new`]).
    pub max_batch: usize,
    /// Longest time the oldest request in a forming batch may wait before
    /// the batch dispatches, in microseconds.
    pub max_wait_us: u128,
}

impl BatchPolicy {
    /// Builds a policy from a configured batch limit, the per-sample
    /// footprint of the served model, and the hardware cache budget. The
    /// effective max batch is `min(limit, budget cap)`, never zero.
    pub fn new(
        limit: usize,
        per_sample_bytes: usize,
        buffer_bytes: usize,
        max_wait_us: u128,
    ) -> Self {
        Self {
            max_batch: limit
                .max(1)
                .min(Self::budget_batch_cap(per_sample_bytes, buffer_bytes)),
            max_wait_us,
        }
    }

    /// The cache-budget bound on batch size: how many samples fit the
    /// on-chip buffer through the model's widest node, clamped to
    /// `1..=1024`. A sample that does not fit at all still serves alone
    /// (batch 1), exactly like the scheduler's spill fallback.
    pub fn budget_batch_cap(per_sample_bytes: usize, buffer_bytes: usize) -> usize {
        let (cap, _fits) = footprint::max_sub_batch(per_sample_bytes, buffer_bytes);
        cap.clamp(1, MAX_BATCH_CEILING)
    }

    /// Whether a batch holding `filled` requests is at capacity.
    pub fn full(&self, filled: usize) -> bool {
        filled >= self.max_batch
    }

    /// Whether the oldest request (arrived at `oldest_us`) has waited out
    /// the deadline at time `now_us`.
    pub fn expired(&self, oldest_us: u128, now_us: u128) -> bool {
        now_us.saturating_sub(oldest_us) >= self.max_wait_us
    }

    /// Whether a non-empty batch must dispatch *now*: it is full, or its
    /// oldest request has hit the deadline. An empty batch never
    /// dispatches.
    pub fn must_dispatch(&self, filled: usize, oldest_us: u128, now_us: u128) -> bool {
        filled > 0 && (self.full(filled) || self.expired(oldest_us, now_us))
    }

    /// Microseconds the batch may keep waiting for more requests before
    /// the oldest one expires. Zero when already expired.
    pub fn time_left_us(&self, oldest_us: u128, now_us: u128) -> u128 {
        self.max_wait_us
            .saturating_sub(now_us.saturating_sub(oldest_us))
    }
}

/// Queue-resident metadata of one admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedMeta {
    /// Request priority; **higher values are more important**. Only
    /// strictly lower-priority work may be shed to admit a request.
    pub priority: u8,
    /// Absolute expiry timestamp on the caller's clock (the same clock
    /// `now_us` arguments use), or `None` for no deadline.
    pub deadline_us: Option<u128>,
    /// Admission order stamp — FIFO tiebreaker within a priority level.
    pub seq: u64,
}

impl QueuedMeta {
    /// Whether this request is past its deadline at `now_us`.
    pub fn expired(&self, now_us: u128) -> bool {
        self.deadline_us.is_some_and(|d| d <= now_us)
    }
}

/// What [`ShedQueue::offer`] did with an incoming request.
#[derive(Debug)]
pub enum Offer<T> {
    /// The queue had room; the request is in.
    Admitted,
    /// The queue was full, but a queued request was less important: it
    /// was evicted and the incoming request admitted in its place. The
    /// caller must answer the victim (`expired` says whether it was past
    /// its deadline — answer "deadline exceeded" — or merely outranked —
    /// answer "overloaded").
    Shed {
        /// The evicted request.
        victim: (QueuedMeta, T),
        /// `true` when the victim was shed because its deadline passed,
        /// `false` when it was shed for being lower priority.
        expired: bool,
    },
    /// The queue is full of equal-or-higher-priority, unexpired work; the
    /// incoming request itself is refused (returned to the caller).
    Full(T),
}

/// A bounded queue with priority-ordered service and shed-on-full
/// admission — the pure core the server wraps in a mutex/condvar pair.
///
/// Service order ([`ShedQueue::pop`]): highest priority first, FIFO
/// within a priority level, expired entries never returned (they are
/// harvested separately via [`ShedQueue::take_expired`]).
///
/// Shed order ([`ShedQueue::offer`] on a full queue): the most-expired
/// queued request first regardless of priority (its waiter can no longer
/// be satisfied anyway); otherwise the lowest-priority queued request
/// strictly below the incoming priority, tie-broken toward the soonest
/// deadline and then the newest arrival — so among equals the queue
/// sheds from the tail, preserving the oldest request's wait investment.
///
/// # Examples
///
/// ```
/// use mbs_serve::batcher::{Offer, ShedQueue};
///
/// let mut q: ShedQueue<&str> = ShedQueue::new(2);
/// assert!(matches!(q.offer(0, None, 0, "background"), Offer::Admitted));
/// assert!(matches!(q.offer(0, Some(50), 0, "expiring"), Offer::Admitted));
/// // Full queue: an urgent request evicts the lower-priority entry that
/// // expires soonest.
/// match q.offer(2, None, 10, "urgent") {
///     Offer::Shed { victim, expired } => {
///         assert_eq!(victim.1, "expiring");
///         assert!(!expired);
///     }
///     other => panic!("expected a shed, got {other:?}"),
/// }
/// // Service is priority-first: the urgent request jumps the queue.
/// assert_eq!(q.pop(10).unwrap().1, "urgent");
/// assert_eq!(q.pop(10).unwrap().1, "background");
/// ```
#[derive(Debug)]
pub struct ShedQueue<T> {
    capacity: usize,
    next_seq: u64,
    items: Vec<(QueuedMeta, T)>,
}

impl<T> ShedQueue<T> {
    /// An empty queue holding at most `capacity` requests (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            next_seq: 0,
            items: Vec::with_capacity(capacity.max(1)),
        }
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether a plain [`ShedQueue::push`] would fit without shedding.
    pub fn has_room(&self) -> bool {
        self.items.len() < self.capacity
    }

    /// Unconditionally admits a request (the blocking-submit path, whose
    /// caller already waited for [`ShedQueue::has_room`]). Never sheds;
    /// may overfill if the caller lied about room.
    pub fn push(&mut self, priority: u8, deadline_us: Option<u128>, item: T) {
        let meta = QueuedMeta {
            priority,
            deadline_us,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.items.push((meta, item));
    }

    /// Non-blocking admission: pushes when there is room, sheds a less
    /// important queued request when full, refuses the incoming request
    /// when nothing queued is less important. See [`Offer`].
    pub fn offer(
        &mut self,
        priority: u8,
        deadline_us: Option<u128>,
        now_us: u128,
        item: T,
    ) -> Offer<T> {
        if self.has_room() {
            self.push(priority, deadline_us, item);
            return Offer::Admitted;
        }
        match self.shed_victim(priority, now_us) {
            Some(at) => {
                let victim = self.items.remove(at);
                let expired = victim.0.expired(now_us);
                self.push(priority, deadline_us, item);
                Offer::Shed { victim, expired }
            }
            None => Offer::Full(item),
        }
    }

    /// Index of the request [`ShedQueue::offer`] would evict for an
    /// incoming request of `priority`, or `None` when the queue holds
    /// only equal-or-higher-priority unexpired work.
    fn shed_victim(&self, priority: u8, now_us: u128) -> Option<usize> {
        // Most expired first: a waiter past its deadline is lost either
        // way, so it is always the cheapest thing to drop.
        if let Some((at, _)) = self
            .items
            .iter()
            .enumerate()
            .filter(|(_, (m, _))| m.expired(now_us))
            .min_by_key(|(_, (m, _))| m.deadline_us)
        {
            return Some(at);
        }
        // Otherwise the least important strictly-lower-priority request:
        // lowest priority, then soonest deadline (None sorts last), then
        // newest arrival.
        self.items
            .iter()
            .enumerate()
            .filter(|(_, (m, _))| m.priority < priority)
            .min_by_key(|(_, (m, _))| {
                (
                    m.priority,
                    m.deadline_us.unwrap_or(u128::MAX),
                    u64::MAX - m.seq,
                )
            })
            .map(|(at, _)| at)
    }

    /// Removes and returns the next request to serve: the oldest request
    /// of the highest priority present, skipping expired entries (those
    /// wait for [`ShedQueue::take_expired`]).
    pub fn pop(&mut self, now_us: u128) -> Option<(QueuedMeta, T)> {
        let at = self
            .items
            .iter()
            .enumerate()
            .filter(|(_, (m, _))| !m.expired(now_us))
            .min_by_key(|(_, (m, _))| (u8::MAX - m.priority, m.seq))
            .map(|(at, _)| at)?;
        Some(self.items.remove(at))
    }

    /// Removes and returns every queued request already past its deadline
    /// at `now_us`, in arrival order. Collectors call this before every
    /// pop so expired requests are answered instead of batched.
    pub fn take_expired(&mut self, now_us: u128) -> Vec<(QueuedMeta, T)> {
        let mut expired = Vec::new();
        let mut i = 0;
        while i < self.items.len() {
            if self.items[i].0.expired(now_us) {
                expired.push(self.items.remove(i));
            } else {
                i += 1;
            }
        }
        expired
    }

    /// Removes and returns everything queued, in arrival order — the
    /// drain path for shutdown and degraded mode.
    pub fn drain_all(&mut self) -> Vec<(QueuedMeta, T)> {
        let mut items = std::mem::take(&mut self.items);
        items.sort_by_key(|(m, _)| m.seq);
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_cap_mirrors_the_scheduler_footprint_model() {
        // 10 KiB budget / 1 KiB per sample -> 10 samples.
        assert_eq!(BatchPolicy::budget_batch_cap(1024, 10 * 1024), 10);
        // Too big to fit -> serve alone, like the scheduler's fallback.
        assert_eq!(BatchPolicy::budget_batch_cap(1 << 30, 1024), 1);
        // No footprint -> finite ceiling, not usize::MAX.
        assert_eq!(BatchPolicy::budget_batch_cap(0, 1024), MAX_BATCH_CEILING);
    }

    #[test]
    fn new_clamps_the_limit_to_the_budget() {
        let p = BatchPolicy::new(64, 1024, 8 * 1024, 500);
        assert_eq!(p.max_batch, 8);
        let p = BatchPolicy::new(4, 1024, 8 * 1024, 500);
        assert_eq!(p.max_batch, 4);
        let p = BatchPolicy::new(0, 1024, 8 * 1024, 500);
        assert_eq!(p.max_batch, 1, "a zero limit still serves one at a time");
    }

    #[test]
    fn dispatch_on_full_or_deadline_only() {
        let p = BatchPolicy::new(4, 0, 0, 100);
        assert!(!p.must_dispatch(0, 0, 1_000_000), "empty never dispatches");
        assert!(p.must_dispatch(4, 0, 0), "full dispatches immediately");
        assert!(!p.must_dispatch(2, 50, 149), "under deadline: keep waiting");
        assert!(p.must_dispatch(2, 50, 150), "deadline reached: dispatch");
        assert_eq!(p.time_left_us(50, 149), 1);
        assert_eq!(p.time_left_us(50, 151), 0);
    }

    #[test]
    fn pop_serves_priority_first_fifo_within() {
        let mut q: ShedQueue<u32> = ShedQueue::new(8);
        q.push(0, None, 10);
        q.push(2, None, 20);
        q.push(0, None, 11);
        q.push(2, None, 21);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop(0)).map(|(_, v)| v).collect();
        assert_eq!(order, vec![20, 21, 10, 11]);
    }

    #[test]
    fn pop_never_returns_expired_entries() {
        let mut q: ShedQueue<u32> = ShedQueue::new(8);
        q.push(5, Some(100), 1); // high priority but expired at t=100
        q.push(0, None, 2);
        assert_eq!(q.pop(100).unwrap().1, 2, "expired high-prio is skipped");
        assert!(q.pop(100).is_none(), "only the expired entry remains");
        let expired = q.take_expired(100);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].1, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn offer_sheds_expired_before_lower_priority() {
        let mut q: ShedQueue<u32> = ShedQueue::new(2);
        q.push(0, None, 1);
        q.push(3, Some(50), 2); // expires at t=50
                                // At t=60 the expired high-priority entry is the victim even
                                // though the no-deadline entry has lower priority.
        match q.offer(1, None, 60, 3) {
            Offer::Shed { victim, expired } => {
                assert_eq!(victim.1, 2);
                assert!(expired);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn offer_sheds_only_strictly_lower_priority() {
        let mut q: ShedQueue<u32> = ShedQueue::new(2);
        q.push(1, None, 1);
        q.push(1, None, 2);
        // Equal priority does not shed: the incoming request is refused.
        assert!(matches!(q.offer(1, None, 0, 3), Offer::Full(3)));
        // Higher priority sheds the newest of the lowest level.
        match q.offer(2, None, 0, 4) {
            Offer::Shed { victim, expired } => {
                assert_eq!(victim.1, 2, "ties shed from the tail");
                assert!(!expired);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Served order: the admitted high-priority request first.
        assert_eq!(q.pop(0).unwrap().1, 4);
        assert_eq!(q.pop(0).unwrap().1, 1);
    }

    #[test]
    fn drain_all_returns_arrival_order() {
        let mut q: ShedQueue<u32> = ShedQueue::new(4);
        q.push(0, None, 1);
        q.push(7, None, 2);
        q.push(3, Some(1), 3);
        let drained: Vec<u32> = q.drain_all().into_iter().map(|(_, v)| v).collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(q.is_empty());
    }
}
