//! Dynamic-batch sizing policy.
//!
//! A batch dispatches when it is **full** (at the effective max batch) or
//! when the **oldest waiting request hits the max-wait deadline** —
//! whichever comes first. The effective max batch is the smaller of the
//! configured limit and the cache-budget bound: the same per-sample
//! footprint model the scheduler uses
//! ([`mbs_core::footprint::max_sub_batch`]) applied to the serving
//! [`HardwareConfig`](mbs_core::HardwareConfig) budget, so a dynamic batch
//! never outgrows the on-chip buffer MBS sizes work against.
//!
//! The policy is pure — plain integers for sizes, microsecond timestamps
//! (`u128`) for time — so the worker loop and the property-test simulation
//! drive the exact same arithmetic, the former from [`std::time::Instant`]
//! deltas and the latter from virtual clocks.

use mbs_core::footprint;

/// Ceiling on the budget-derived batch cap, so footprint-free models
/// (`per_sample_bytes == 0`) still get a finite batch size.
const MAX_BATCH_CEILING: usize = 1024;

/// When a partially filled batch must stop waiting and dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch the policy ever assembles (already clamped to the
    /// cache-budget bound by [`BatchPolicy::new`]).
    pub max_batch: usize,
    /// Longest time the oldest request in a forming batch may wait before
    /// the batch dispatches, in microseconds.
    pub max_wait_us: u128,
}

impl BatchPolicy {
    /// Builds a policy from a configured batch limit, the per-sample
    /// footprint of the served model, and the hardware cache budget. The
    /// effective max batch is `min(limit, budget cap)`, never zero.
    pub fn new(
        limit: usize,
        per_sample_bytes: usize,
        buffer_bytes: usize,
        max_wait_us: u128,
    ) -> Self {
        Self {
            max_batch: limit
                .max(1)
                .min(Self::budget_batch_cap(per_sample_bytes, buffer_bytes)),
            max_wait_us,
        }
    }

    /// The cache-budget bound on batch size: how many samples fit the
    /// on-chip buffer through the model's widest node, clamped to
    /// `1..=1024`. A sample that does not fit at all still serves alone
    /// (batch 1), exactly like the scheduler's spill fallback.
    pub fn budget_batch_cap(per_sample_bytes: usize, buffer_bytes: usize) -> usize {
        let (cap, _fits) = footprint::max_sub_batch(per_sample_bytes, buffer_bytes);
        cap.clamp(1, MAX_BATCH_CEILING)
    }

    /// Whether a batch holding `filled` requests is at capacity.
    pub fn full(&self, filled: usize) -> bool {
        filled >= self.max_batch
    }

    /// Whether the oldest request (arrived at `oldest_us`) has waited out
    /// the deadline at time `now_us`.
    pub fn expired(&self, oldest_us: u128, now_us: u128) -> bool {
        now_us.saturating_sub(oldest_us) >= self.max_wait_us
    }

    /// Whether a non-empty batch must dispatch *now*: it is full, or its
    /// oldest request has hit the deadline. An empty batch never
    /// dispatches.
    pub fn must_dispatch(&self, filled: usize, oldest_us: u128, now_us: u128) -> bool {
        filled > 0 && (self.full(filled) || self.expired(oldest_us, now_us))
    }

    /// Microseconds the batch may keep waiting for more requests before
    /// the oldest one expires. Zero when already expired.
    pub fn time_left_us(&self, oldest_us: u128, now_us: u128) -> u128 {
        self.max_wait_us
            .saturating_sub(now_us.saturating_sub(oldest_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_cap_mirrors_the_scheduler_footprint_model() {
        // 10 KiB budget / 1 KiB per sample -> 10 samples.
        assert_eq!(BatchPolicy::budget_batch_cap(1024, 10 * 1024), 10);
        // Too big to fit -> serve alone, like the scheduler's fallback.
        assert_eq!(BatchPolicy::budget_batch_cap(1 << 30, 1024), 1);
        // No footprint -> finite ceiling, not usize::MAX.
        assert_eq!(BatchPolicy::budget_batch_cap(0, 1024), MAX_BATCH_CEILING);
    }

    #[test]
    fn new_clamps_the_limit_to_the_budget() {
        let p = BatchPolicy::new(64, 1024, 8 * 1024, 500);
        assert_eq!(p.max_batch, 8);
        let p = BatchPolicy::new(4, 1024, 8 * 1024, 500);
        assert_eq!(p.max_batch, 4);
        let p = BatchPolicy::new(0, 1024, 8 * 1024, 500);
        assert_eq!(p.max_batch, 1, "a zero limit still serves one at a time");
    }

    #[test]
    fn dispatch_on_full_or_deadline_only() {
        let p = BatchPolicy::new(4, 0, 0, 100);
        assert!(!p.must_dispatch(0, 0, 1_000_000), "empty never dispatches");
        assert!(p.must_dispatch(4, 0, 0), "full dispatches immediately");
        assert!(!p.must_dispatch(2, 50, 149), "under deadline: keep waiting");
        assert!(p.must_dispatch(2, 50, 150), "deadline reached: dispatch");
        assert_eq!(p.time_left_us(50, 149), 1);
        assert_eq!(p.time_left_us(50, 151), 0);
    }
}
