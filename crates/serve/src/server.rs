//! The in-process request loop.
//!
//! [`Server::start`] spawns thread-per-core workers behind one bounded
//! MPSC request queue. Each request carries its own oneshot response
//! channel; a [`Client`] submits a single sample and gets a [`Pending`]
//! handle to wait on. One worker at a time holds the queue receiver and
//! collects a dynamic batch under the [`BatchPolicy`] (dispatch when full
//! or when the first-collected request hits the max-wait deadline), then
//! releases the receiver — so the next worker collects while the previous
//! one runs inference. Each worker installs a
//! [`LocalArena`](mbs_tensor::arena::LocalArena) so scratch-buffer reuse
//! never contends across workers.
//!
//! Shutdown drops the server's queue sender; workers drain whatever is
//! already queued (every accepted request still gets its response), then
//! exit. Submissions after shutdown fail fast with
//! [`ServeError::Rejected`] — no hangs.

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mbs_cnn::FeatureShape;
use mbs_core::HardwareConfig;
use mbs_tensor::{arena, env, Tensor};

use crate::batcher::BatchPolicy;
use crate::model::{ModelHandle, ModelRunner, Prediction};

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or already shut down) and accepts no
    /// new work.
    Rejected,
    /// The request was accepted but its response channel closed before a
    /// result arrived — the serving thread died.
    Dropped,
    /// The sample's shape does not match the served model's input.
    Shape {
        /// The `[c, h, w]` shape the model expects.
        expected: Vec<usize>,
        /// The shape that was submitted.
        found: Vec<usize>,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Rejected => write!(f, "server is shut down; request rejected"),
            Self::Dropped => write!(f, "response channel closed before a result arrived"),
            Self::Shape { expected, found } => {
                write!(
                    f,
                    "sample shape {found:?} does not match model input {expected:?}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Sizing for one [`Server`]. Build it by hand for exact control (tests
/// pin batch sizes this way) or from the model + hardware budget via
/// [`ServeConfig::for_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads (each owns a private [`ModelRunner`]). Minimum 1.
    pub workers: usize,
    /// Largest dynamic batch a worker assembles. `for_model` clamps this
    /// to the cache-budget bound; hand-built configs are taken as-is.
    pub max_batch: usize,
    /// Longest a collected request waits for batch-mates, in
    /// microseconds.
    pub max_wait_us: u64,
    /// Bound of the shared request queue — full-queue submissions block,
    /// which is the serving backpressure.
    pub queue_depth: usize,
}

impl ServeConfig {
    /// Derives a config from the served model and the hardware budget:
    /// one worker per core, max batch = the cache-budget cap
    /// ([`BatchPolicy::budget_batch_cap`]), a 2 ms max wait, and a queue
    /// deep enough for every worker to have a full batch in flight.
    ///
    /// Environment knobs override each field (see
    /// [`mbs_tensor::env`] for the grammar): `MBS_SERVE_WORKERS`,
    /// `MBS_SERVE_MAX_BATCH` (still clamped to the budget cap),
    /// `MBS_SERVE_MAX_WAIT_US`, `MBS_SERVE_QUEUE`.
    pub fn for_model(model: &ModelHandle, hw: &HardwareConfig) -> Self {
        let budget_cap =
            BatchPolicy::budget_batch_cap(model.per_sample_bytes(), hw.global_buffer_bytes);
        let workers = env::positive_usize_knob("MBS_SERVE_WORKERS").unwrap_or(hw.cores.max(1));
        let max_batch = env::positive_usize_knob("MBS_SERVE_MAX_BATCH")
            .unwrap_or(budget_cap)
            .min(budget_cap);
        let max_wait_us = env::positive_usize_knob("MBS_SERVE_MAX_WAIT_US").unwrap_or(2_000) as u64;
        let queue_depth =
            env::positive_usize_knob("MBS_SERVE_QUEUE").unwrap_or((workers * max_batch * 2).max(8));
        Self {
            workers,
            max_batch,
            max_wait_us,
            queue_depth,
        }
    }
}

/// Counters a running server accumulates; snapshot via [`Server::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// `histogram[k]` = number of batches that held exactly `k` samples
    /// (`histogram[0]` is always 0).
    pub histogram: Vec<u64>,
}

impl ServeStats {
    fn record_batch(&mut self, size: usize) {
        if self.histogram.len() <= size {
            self.histogram.resize(size + 1, 0);
        }
        self.histogram[size] += 1;
        self.batches += 1;
        self.requests += size as u64;
    }
}

/// One queued request: the sample plus its oneshot response channel.
struct Job {
    sample: Tensor,
    tx: SyncSender<Result<Prediction, ServeError>>,
}

struct Shared {
    /// `Some` while accepting; `None` after shutdown begins. Dropping the
    /// sender is what lets workers drain and exit.
    sender: Mutex<Option<SyncSender<Job>>>,
    stats: Mutex<ServeStats>,
    input: FeatureShape,
}

/// A running dynamic-batching inference server. Dropping it (or calling
/// [`Server::shutdown`]) stops intake, drains queued requests, and joins
/// the workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawns `config.workers` threads serving `model` and starts
    /// accepting requests.
    pub fn start(model: &ModelHandle, config: ServeConfig) -> Self {
        let policy = BatchPolicy {
            max_batch: config.max_batch.max(1),
            max_wait_us: u128::from(config.max_wait_us),
        };
        let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            sender: Mutex::new(Some(tx)),
            stats: Mutex::new(ServeStats::default()),
            input: model.input(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                let runner = model.runner();
                thread::Builder::new()
                    .name(format!("mbs-serve-{i}"))
                    .spawn(move || worker_loop(runner, &rx, &shared, policy))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// A handle for submitting requests; clone one per producer thread.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Snapshot of the counters so far.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.lock().expect("stats lock").clone()
    }

    /// Stops intake, waits for the workers to drain every queued request,
    /// and returns the final counters. Requests submitted after this
    /// starts get [`ServeError::Rejected`].
    pub fn shutdown(mut self) -> ServeStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        self.shared.sender.lock().expect("sender lock").take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Submits single-sample requests to a [`Server`]. Cheap to clone; safe
/// to share across producer threads.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Submits one sample (shape `[c, h, w]` or `[1, c, h, w]`). Blocks
    /// only while the request queue is full (backpressure), never after
    /// shutdown — a closed server rejects immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shape`] for a sample that does not match the model
    /// input, [`ServeError::Rejected`] when the server is shut down.
    pub fn submit(&self, sample: &Tensor) -> Result<Pending, ServeError> {
        let want = self.shared.input;
        let expected = [want.channels, want.height, want.width];
        let shape = sample.shape();
        let ok = shape == expected || (shape.len() == 4 && shape[0] == 1 && shape[1..] == expected);
        if !ok {
            return Err(ServeError::Shape {
                expected: expected.to_vec(),
                found: shape.to_vec(),
            });
        }
        // Clone the sender out of the lock so the (possibly blocking)
        // queue send happens without holding it.
        let sender = match self.shared.sender.lock().expect("sender lock").clone() {
            Some(s) => s,
            None => return Err(ServeError::Rejected),
        };
        let (tx, rx) = sync_channel(1);
        sender
            .send(Job {
                sample: sample.clone(),
                tx,
            })
            .map_err(|_| ServeError::Rejected)?;
        Ok(Pending { rx })
    }
}

/// The response side of one submitted request.
pub struct Pending {
    rx: Receiver<Result<Prediction, ServeError>>,
}

impl Pending {
    /// Blocks until the prediction arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::Dropped`] if the serving thread died before
    /// answering; any error the server sent back.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Dropped))
    }

    /// Like [`Pending::wait`] but gives up after `timeout` — test
    /// harnesses use this to fail instead of hanging.
    ///
    /// # Errors
    ///
    /// [`ServeError::Dropped`] on timeout or a dead serving thread.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Prediction, ServeError> {
        self.rx
            .recv_timeout(timeout)
            .unwrap_or(Err(ServeError::Dropped))
    }
}

/// Collect-dispatch loop for one worker. Holding the receiver lock marks
/// this worker as the collector; the policy decides when its batch stops
/// waiting. The deadline clock starts when the worker picks up the first
/// request of a batch.
fn worker_loop(
    mut runner: ModelRunner,
    rx: &Mutex<Receiver<Job>>,
    shared: &Shared,
    policy: BatchPolicy,
) {
    let _arena = arena::LocalArena::install();
    loop {
        let mut batch: Vec<Job> = Vec::with_capacity(policy.max_batch);
        let mut disconnected = false;
        {
            let rx = rx.lock().expect("receiver lock");
            match rx.recv() {
                Ok(job) => batch.push(job),
                Err(_) => disconnected = true,
            }
            if !disconnected {
                let start = Instant::now();
                loop {
                    let now_us = start.elapsed().as_micros();
                    if policy.must_dispatch(batch.len(), 0, now_us) {
                        break;
                    }
                    let left = policy.time_left_us(0, now_us);
                    match rx.recv_timeout(Duration::from_micros(left as u64)) {
                        Ok(job) => batch.push(job),
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
            }
        }
        if !batch.is_empty() {
            dispatch(&mut runner, batch, shared);
        }
        if disconnected {
            return;
        }
    }
}

/// Stacks a batch into one `[k, c, h, w]` tensor, runs the inference
/// forward, and fans the per-sample logits back to the oneshots. A
/// requester that already gave up (dropped its [`Pending`]) is skipped
/// silently.
fn dispatch(runner: &mut ModelRunner, batch: Vec<Job>, shared: &Shared) {
    let k = batch.len();
    let shape = runner.input();
    let mut data = Vec::with_capacity(k * shape.elems());
    for job in &batch {
        data.extend_from_slice(job.sample.data());
    }
    let x = Tensor::from_vec(&[k, shape.channels, shape.height, shape.width], data);
    let y = runner.infer(x);
    let classes = runner.classes();
    let out = y.data();
    for (i, job) in batch.into_iter().enumerate() {
        let logits = out[i * classes..(i + 1) * classes].to_vec();
        let _ = job.tx.send(Ok(Prediction::from_logits(logits)));
    }
    shared.stats.lock().expect("stats lock").record_batch(k);
}
