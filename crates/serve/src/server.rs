//! The in-process request loop: admission control, supervision, hot swap.
//!
//! [`Server::start`] spawns thread-per-core workers behind one bounded,
//! priority-ordered request queue (a [`ShedQueue`] under a mutex/condvar
//! pair). Each request carries its own oneshot response slot; a
//! [`Client`] submits a single sample and gets a [`Pending`] handle to
//! wait on. One worker at a time holds the collector lock and assembles a
//! dynamic batch under the [`BatchPolicy`] (dispatch when full or when
//! the first-collected request hits the max-wait deadline), then releases
//! it — so the next worker collects while the previous one runs
//! inference. Each worker installs a
//! [`LocalArena`](mbs_tensor::arena::LocalArena) so scratch-buffer reuse
//! never contends across workers.
//!
//! **Overload.** [`Client::submit`] blocks while the queue is full (the
//! classic backpressure path); [`Client::try_submit`] never blocks —
//! when the queue is full it sheds the most-expired, then
//! lowest-priority queued request to admit more important work, and
//! refuses the incoming request with [`ServeError::Overloaded`] (carrying
//! a `retry_after_us` computed from the measured service rate and the
//! cache-budget batch capacity) when nothing queued is less important.
//! Collectors answer already-expired requests with
//! [`ServeError::DeadlineExceeded`] *before* batching, so no forward pass
//! is wasted on a result nobody will read.
//!
//! **Supervision.** Every worker runs its collect/dispatch loop under
//! [`std::panic::catch_unwind`]. A panic mid-batch answers every request
//! in the doomed batch with [`ServeError::WorkerFailed`] (a drop guard
//! owns the batch, so even the panic path answers), then the worker
//! respawns with exponential backoff. A run of consecutive panics with no
//! successful batch in between trips the circuit breaker
//! ([`ServeConfig::max_respawns`]): the server flips into **degraded**
//! mode, where submissions and queued work are rejected fast with
//! `WorkerFailed` instead of being fed to a model that keeps crashing.
//! A successful [`Server::swap`] heals a degraded server.
//!
//! **Hot swap.** [`Server::swap`] (and the file/directory conveniences
//! [`Server::swap_file`] / [`Server::swap_latest`]) validates the
//! replacement model *off* the worker path — checkpoint checksum and
//! fingerprint guards via the loading path, geometry compatibility, and
//! a probe forward — then flips the shared handle between batches. Every
//! in-flight batch finishes on the handle it started with, so each
//! response is attributable to exactly one model version; a failed load
//! or probe leaves the previous model serving (automatic rollback).
//!
//! The server lifecycle is a three-state machine:
//!
//! ```text
//! accepting ──(max_respawns+1 consecutive panics)──▶ degraded
//!     ▲                                                 │
//!     └────────────(successful Server::swap)────────────┘
//! accepting | degraded ──(shutdown / drop)──▶ shut down (terminal)
//! ```
//!
//! Shutdown closes the queue; workers drain whatever is already queued
//! (every accepted request still gets its response), then exit.
//! Submissions after shutdown fail fast with [`ServeError::Rejected`] —
//! no hangs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mbs_cnn::{FeatureShape, Network};
use mbs_core::{HardwareConfig, Schedule};
use mbs_tensor::{arena, env, Tensor};
use mbs_train::checkpoint::LoadReport;

use crate::batcher::{BatchPolicy, Offer, ShedQueue};
use crate::faults::ServeFaultPlan;
use crate::model::{ModelError, ModelHandle, ModelRunner, Prediction};

/// Base of the worker-respawn exponential backoff, in milliseconds
/// (doubled per consecutive panic, capped at [`BACKOFF_CAP_MS`]).
const BACKOFF_BASE_MS: u64 = 2;

/// Ceiling of the worker-respawn backoff, in milliseconds.
const BACKOFF_CAP_MS: u64 = 200;

/// Longest a worker sleeps on a condvar before re-checking the
/// closed/degraded flags — bounds how stale a state flip can go
/// unnoticed, never how long a request waits.
const POLL_CAP: Duration = Duration::from_millis(25);

/// Why a request failed. Every variant's `Display` text names the
/// recovery action, so surfacing the error *is* the runbook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or already shut down) and accepts no
    /// new work. Terminal — do not retry against this server.
    Rejected,
    /// The server is saturated: the queue is full of equal-or-higher
    /// priority unexpired work (or this request was shed to admit more
    /// important work). Retry after backing off.
    Overloaded {
        /// Suggested backoff before retrying, in microseconds: the
        /// current queue length divided by the measured service rate
        /// (batches/second × cache-budget batch capacity × workers).
        retry_after_us: u64,
    },
    /// The request's deadline passed before a result was ready — it was
    /// never batched, so no compute was wasted on it. Retry with a longer
    /// deadline or at lower load.
    DeadlineExceeded,
    /// A serving worker crashed while this request was in its batch (or
    /// the server is degraded after repeated crashes). The request was
    /// never answered from the model, so retrying is safe; a degraded
    /// server heals on the next successful model swap.
    WorkerFailed,
    /// The sample's shape does not match the served model's input.
    Shape {
        /// The `[c, h, w]` shape the model expects.
        expected: Vec<usize>,
        /// The shape that was submitted.
        found: Vec<usize>,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Rejected => {
                write!(f, "server is shut down; submit to a live server instead")
            }
            Self::Overloaded { retry_after_us } => write!(
                f,
                "server is overloaded and shed this request; retry after ~{retry_after_us}us"
            ),
            Self::DeadlineExceeded => write!(
                f,
                "deadline passed before a result was ready; retry with a \
                 longer deadline or at lower load"
            ),
            Self::WorkerFailed => write!(
                f,
                "a serving worker failed before answering; the request was \
                 not served — safe to retry (a degraded server heals on the \
                 next successful model swap)"
            ),
            Self::Shape { expected, found } => {
                write!(
                    f,
                    "sample shape {found:?} does not match model input {expected:?}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Why [`Server::swap`] refused to flip to a new model. In every case the
/// previously served model keeps serving untouched — rollback is the
/// absence of the flip, so a failed swap can never lose or mis-answer an
/// in-flight request.
#[derive(Debug)]
pub enum SwapError {
    /// The replacement checkpoint failed to load or validate (corrupt
    /// file, checksum mismatch, wrong network, state that does not fit).
    Load(ModelError),
    /// The replacement model serves a different input/output geometry
    /// than the running one, so queued requests would stop matching.
    Incompatible {
        /// Geometry of the model currently serving.
        expected: String,
        /// Geometry of the rejected replacement.
        found: String,
    },
    /// The replacement loaded but its probe forward panicked — it would
    /// have taken the workers down with it.
    Probe,
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Load(e) => write!(f, "swap rejected, old model keeps serving: {e}"),
            Self::Incompatible { expected, found } => write!(
                f,
                "swap rejected, old model keeps serving: replacement serves \
                 {found} but the server was started for {expected}"
            ),
            Self::Probe => write!(
                f,
                "swap rejected, old model keeps serving: the replacement's \
                 probe forward panicked"
            ),
        }
    }
}

impl std::error::Error for SwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Load(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SwapError {
    fn from(e: ModelError) -> Self {
        Self::Load(e)
    }
}

/// Per-request submission options: a priority level and an optional
/// deadline. The default is the lowest priority with no explicit deadline
/// (the server's [`ServeConfig::deadline_us`] default still applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubmitOptions {
    /// Priority level, clamped to `0..ServeConfig::priority_levels`;
    /// **higher is more important**. Admission control only sheds work of
    /// strictly lower priority.
    pub priority: u8,
    /// Deadline measured from submission; `None` falls back to the
    /// server's configured default (which may be "no deadline"). A
    /// request past its deadline is answered
    /// [`ServeError::DeadlineExceeded`] instead of being batched.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Options at `priority` with no explicit deadline.
    pub fn priority(priority: u8) -> Self {
        Self {
            priority,
            deadline: None,
        }
    }

    /// Returns `self` with the deadline set.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Sizing and robustness settings for one [`Server`]. Build it by hand
/// for exact control (tests pin batch sizes this way) or from the model +
/// hardware budget via [`ServeConfig::for_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads (each owns a private [`ModelRunner`]). Minimum 1.
    pub workers: usize,
    /// Largest dynamic batch a worker assembles. `for_model` clamps this
    /// to the cache-budget bound; hand-built configs are taken as-is.
    pub max_batch: usize,
    /// Longest a collected request waits for batch-mates, in
    /// microseconds.
    pub max_wait_us: u64,
    /// Bound of the shared request queue — full-queue [`Client::submit`]
    /// calls block (backpressure) and [`Client::try_submit`] calls shed
    /// or refuse ([`ServeError::Overloaded`]).
    pub queue_depth: usize,
    /// Default per-request deadline in microseconds, applied when
    /// [`SubmitOptions::deadline`] is `None`; `0` means no default
    /// deadline.
    pub deadline_us: u64,
    /// Number of priority levels; submitted priorities are clamped to
    /// `0..priority_levels`. Minimum 1.
    pub priority_levels: u8,
    /// Circuit breaker: how many times a panicked worker is respawned
    /// with no successful batch in between before the server flips into
    /// reject-fast degraded mode.
    pub max_respawns: u32,
}

impl Default for ServeConfig {
    /// Small, safe defaults for hand-built configs: 1 worker, batch 8,
    /// 2 ms wait, queue 32, no default deadline, 4 priority levels,
    /// breaker at 3 respawns.
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 8,
            max_wait_us: 2_000,
            queue_depth: 32,
            deadline_us: 0,
            priority_levels: 4,
            max_respawns: 3,
        }
    }
}

impl ServeConfig {
    /// Derives a config from the served model and the hardware budget:
    /// one worker per core, max batch = the cache-budget cap
    /// ([`BatchPolicy::budget_batch_cap`]), a 2 ms max wait, a queue
    /// deep enough for every worker to have a full batch in flight, no
    /// default deadline, 4 priority levels, and a breaker at 3 respawns.
    ///
    /// Environment knobs override each field (see
    /// [`mbs_tensor::env`] for the grammar): `MBS_SERVE_WORKERS`,
    /// `MBS_SERVE_MAX_BATCH` (still clamped to the budget cap),
    /// `MBS_SERVE_MAX_WAIT_US`, `MBS_SERVE_QUEUE`,
    /// `MBS_SERVE_DEADLINE_US`, `MBS_SERVE_PRIORITY_LEVELS`,
    /// `MBS_SERVE_MAX_RESPAWNS`.
    pub fn for_model(model: &ModelHandle, hw: &HardwareConfig) -> Self {
        let budget_cap =
            BatchPolicy::budget_batch_cap(model.per_sample_bytes(), hw.global_buffer_bytes);
        let workers = env::positive_usize_knob("MBS_SERVE_WORKERS").unwrap_or(hw.cores.max(1));
        let max_batch = env::positive_usize_knob("MBS_SERVE_MAX_BATCH")
            .unwrap_or(budget_cap)
            .min(budget_cap);
        let max_wait_us = env::positive_usize_knob("MBS_SERVE_MAX_WAIT_US").unwrap_or(2_000) as u64;
        let queue_depth =
            env::positive_usize_knob("MBS_SERVE_QUEUE").unwrap_or((workers * max_batch * 2).max(8));
        let deadline_us = env::knob(
            "MBS_SERVE_DEADLINE_US",
            "a non-negative microsecond count (0 = no default deadline)",
            env::parse_usize,
        )
        .unwrap_or(0) as u64;
        let priority_levels = env::positive_usize_knob("MBS_SERVE_PRIORITY_LEVELS")
            .unwrap_or(4)
            .min(u8::MAX as usize) as u8;
        let max_respawns = env::knob(
            "MBS_SERVE_MAX_RESPAWNS",
            "a non-negative respawn count (0 = degrade on the first repeat panic)",
            env::parse_usize,
        )
        .unwrap_or(3) as u32;
        Self {
            workers,
            max_batch,
            max_wait_us,
            queue_depth,
            deadline_us,
            priority_levels,
            max_respawns,
        }
    }
}

/// Counters a running server accumulates; snapshot via [`Server::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with a prediction.
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// `histogram[k]` = number of batches that held exactly `k` samples
    /// (`histogram[0]` is always 0).
    pub histogram: Vec<u64>,
    /// Requests shed by admission control and answered
    /// [`ServeError::Overloaded`].
    pub shed: u64,
    /// Requests answered [`ServeError::DeadlineExceeded`] (expired in the
    /// queue, or shed while already expired).
    pub expired: u64,
    /// Requests answered [`ServeError::WorkerFailed`] (in a panicked
    /// batch, or drained in degraded mode).
    pub failed: u64,
    /// Worker panics caught by the supervisor.
    pub panics: u64,
    /// Worker respawns performed (panics that did not trip the breaker).
    pub respawns: u64,
    /// Successful model swaps.
    pub swaps: u64,
}

impl ServeStats {
    fn record_batch(&mut self, size: usize) {
        if self.histogram.len() <= size {
            self.histogram.resize(size + 1, 0);
        }
        self.histogram[size] += 1;
        self.batches += 1;
        self.requests += size as u64;
    }

    /// Requests answered in total, over every outcome: predictions,
    /// sheds, expiries, and worker failures.
    pub fn answered(&self) -> u64 {
        self.requests + self.shed + self.expired + self.failed
    }
}

/// Locks a mutex, recovering the guard if a panicking worker poisoned it
/// — supervision must keep running exactly when panics happen.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One waiter's response slot: a hand-rolled oneshot whose abandoned
/// state lets a late worker send be dropped immediately (the buffer is
/// reclaimed right away) instead of erroring the worker loop.
#[derive(Debug)]
struct ResponseSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Debug)]
enum SlotState {
    /// The waiter has not received a result yet.
    Waiting,
    /// A result is parked for the waiter.
    Filled(Result<Prediction, ServeError>),
    /// The waiter gave up (timeout or dropped [`Pending`]); any late fill
    /// is dropped on the spot — the slot is reclaimed, never an error.
    Abandoned,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Waiting),
            cv: Condvar::new(),
        })
    }

    /// Parks `result` for the waiter (exactly-once; later fills of a
    /// filled or abandoned slot are dropped silently).
    fn fill(&self, result: Result<Prediction, ServeError>) {
        let mut s = lock(&self.state);
        if matches!(*s, SlotState::Waiting) {
            *s = SlotState::Filled(result);
            self.cv.notify_all();
        }
        // Filled twice cannot happen (each job is answered once); an
        // Abandoned slot drops `result` here, reclaiming it immediately.
    }
}

/// One queued request: the sample plus its oneshot response slot.
struct Job {
    sample: Tensor,
    slot: Arc<ResponseSlot>,
}

/// The response side of one submitted request.
pub struct Pending {
    slot: Arc<ResponseSlot>,
    taken: bool,
}

impl Pending {
    /// Blocks until the result arrives (a prediction or the structured
    /// error the server answered with).
    ///
    /// # Errors
    ///
    /// Whatever the server answered: [`ServeError::DeadlineExceeded`],
    /// [`ServeError::Overloaded`] (shed), or [`ServeError::WorkerFailed`].
    pub fn wait(mut self) -> Result<Prediction, ServeError> {
        let mut s = lock(&self.slot.state);
        loop {
            if let SlotState::Filled(_) = *s {
                let r = std::mem::replace(&mut *s, SlotState::Abandoned);
                self.taken = true;
                match r {
                    SlotState::Filled(result) => return result,
                    _ => unreachable!("checked Filled above"),
                }
            }
            s = self.slot.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`Pending::wait`] but gives up after `timeout`. Giving up
    /// marks the slot abandoned, so a worker that answers later drops the
    /// result immediately — the slot is reclaimed, the worker loop never
    /// errors, and no buffer leaks.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] when `timeout` passes first; any
    /// error the server answered with.
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<Prediction, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut s = lock(&self.slot.state);
        loop {
            if let SlotState::Filled(_) = *s {
                let r = std::mem::replace(&mut *s, SlotState::Abandoned);
                self.taken = true;
                match r {
                    SlotState::Filled(result) => return result,
                    _ => unreachable!("checked Filled above"),
                }
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                *s = SlotState::Abandoned;
                self.taken = true;
                return Err(ServeError::DeadlineExceeded);
            }
            let (guard, _) = self
                .slot
                .cv
                .wait_timeout(s, left)
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if !self.taken {
            let mut s = lock(&self.slot.state);
            *s = SlotState::Abandoned;
        }
    }
}

/// The queue plus its closed flag, under one mutex.
struct QueueState {
    queue: ShedQueue<Job>,
    closed: bool,
}

/// State shared between the server handle, its clients, and its workers.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when work arrives or the closed/degraded state flips.
    not_empty: Condvar,
    /// Signalled when queue room appears (blocking submit backpressure).
    not_full: Condvar,
    /// Whichever worker holds this is the collector assembling a batch.
    collector: Mutex<()>,
    stats: Mutex<ServeStats>,
    /// The served model; [`Server::swap`] replaces the `Arc` and bumps
    /// `model_version`, and workers re-clone their runner when the
    /// version they cached goes stale — an ArcSwap without the crate.
    model: Mutex<Arc<ModelHandle>>,
    model_version: AtomicU64,
    /// Circuit-breaker state: consecutive worker panics with no
    /// successful batch in between, and the reject-fast degraded flag.
    consecutive_panics: AtomicU32,
    degraded: AtomicBool,
    /// EWMA of wall nanoseconds per dispatched batch (bits of an `f64`);
    /// `0` until the first batch. Feeds `retry_after_us`.
    batch_ns_ewma: AtomicU64,
    /// Global dispatch counter driving the fault plan.
    batch_counter: AtomicU64,
    fault: ServeFaultPlan,
    /// Epoch all queue timestamps (deadlines) are measured against.
    epoch: Instant,
    input: FeatureShape,
    classes: usize,
    policy: BatchPolicy,
    config: ServeConfig,
}

impl Shared {
    /// Microseconds since the server's epoch — the clock queue deadlines
    /// live on.
    fn now_us(&self) -> u128 {
        self.epoch.elapsed().as_micros()
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Resolves submit options against the config: clamp the priority,
    /// apply the default deadline.
    fn admission(&self, opts: SubmitOptions) -> (u8, Option<u128>) {
        let priority = opts.priority.min(self.config.priority_levels.max(1) - 1);
        let deadline = opts.deadline.map(|d| d.as_micros()).or_else(|| {
            (self.config.deadline_us > 0).then_some(u128::from(self.config.deadline_us))
        });
        (priority, deadline.map(|d| self.now_us() + d))
    }

    /// Suggested retry backoff for an overloaded answer: how long the
    /// current queue takes to drain at the measured service rate
    /// (batches/second × cache-budget batch capacity × workers). Before
    /// the first measured batch, the batching deadline is the estimate.
    fn retry_after_us(&self, queue_len: usize) -> u64 {
        let batch_ns = f64::from_bits(self.batch_ns_ewma.load(Ordering::Relaxed));
        if batch_ns <= 0.0 {
            return self.config.max_wait_us.max(1);
        }
        let per_request_ns =
            batch_ns / (self.policy.max_batch.max(1) * self.config.workers.max(1)) as f64;
        (((queue_len as f64 + 1.0) * per_request_ns / 1e3).ceil() as u64).max(1)
    }

    /// Folds one measured batch wall time into the service-rate EWMA.
    fn note_batch_time(&self, dt_ns: f64) {
        let prev = f64::from_bits(self.batch_ns_ewma.load(Ordering::Relaxed));
        let next = if prev <= 0.0 {
            dt_ns
        } else {
            0.8 * prev + 0.2 * dt_ns
        };
        self.batch_ns_ewma.store(next.to_bits(), Ordering::Relaxed);
    }

    /// Answers and counts a shed victim (from `try_submit` admission).
    fn answer_victim(&self, job: Job, expired: bool, queue_len: usize) {
        let mut stats = lock(&self.stats);
        if expired {
            stats.expired += 1;
        } else {
            stats.shed += 1;
        }
        drop(stats);
        let err = if expired {
            ServeError::DeadlineExceeded
        } else {
            ServeError::Overloaded {
                retry_after_us: self.retry_after_us(queue_len),
            }
        };
        job.slot.fill(Err(err));
    }
}

/// A running dynamic-batching inference server. Dropping it (or calling
/// [`Server::shutdown`]) stops intake, drains queued requests, and joins
/// the workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawns `config.workers` threads serving `model` and starts
    /// accepting requests.
    pub fn start(model: &ModelHandle, config: ServeConfig) -> Self {
        Self::start_with_faults(model, config, ServeFaultPlan::default())
    }

    /// Like [`Server::start`], with a [`ServeFaultPlan`] injecting
    /// deterministic worker panics and stalls — the chaos-test harness.
    /// Production servers carry the default (empty) plan.
    pub fn start_with_faults(
        model: &ModelHandle,
        config: ServeConfig,
        fault: ServeFaultPlan,
    ) -> Self {
        let policy = BatchPolicy {
            max_batch: config.max_batch.max(1),
            max_wait_us: u128::from(config.max_wait_us),
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                queue: ShedQueue::new(config.queue_depth.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            collector: Mutex::new(()),
            stats: Mutex::new(ServeStats::default()),
            model: Mutex::new(Arc::new(model.clone())),
            model_version: AtomicU64::new(0),
            consecutive_panics: AtomicU32::new(0),
            degraded: AtomicBool::new(false),
            batch_ns_ewma: AtomicU64::new(0),
            batch_counter: AtomicU64::new(0),
            fault,
            epoch: Instant::now(),
            input: model.input(),
            classes: model.classes(),
            policy,
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mbs-serve-{i}"))
                    .spawn(move || worker_thread(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// A handle for submitting requests; clone one per producer thread.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Snapshot of the counters so far.
    pub fn stats(&self) -> ServeStats {
        lock(&self.shared.stats).clone()
    }

    /// Whether the circuit breaker has flipped the server into
    /// reject-fast degraded mode (healed by a successful [`Server::swap`]).
    pub fn is_degraded(&self) -> bool {
        self.shared.is_degraded()
    }

    /// Replaces the served model with `handle`, validated off the worker
    /// path: the geometry must match the running model and a probe
    /// forward must survive. The flip happens between batches — every
    /// in-flight batch finishes on the model it started with, so no
    /// request is lost or answered by a half-swapped model. A successful
    /// swap also heals a degraded server (the breaker resets).
    ///
    /// # Errors
    ///
    /// [`SwapError::Incompatible`] or [`SwapError::Probe`]; on any error
    /// the previous model keeps serving untouched.
    pub fn swap(&self, handle: ModelHandle) -> Result<(), SwapError> {
        if handle.input() != self.shared.input || handle.classes() != self.shared.classes {
            let geometry = |input: FeatureShape, classes: usize| {
                format!(
                    "input [{}, {}, {}] -> {} classes",
                    input.channels, input.height, input.width, classes
                )
            };
            return Err(SwapError::Incompatible {
                expected: geometry(self.shared.input, self.shared.classes),
                found: geometry(handle.input(), handle.classes()),
            });
        }
        // Probe forward on this thread, off the worker path: a model that
        // panics must be rejected here, not take a worker down later.
        let input = handle.input();
        let mut probe = handle.runner();
        let zero = Tensor::zeros(&[input.channels, input.height, input.width]);
        catch_unwind(AssertUnwindSafe(|| probe.infer_one(&zero))).map_err(|_| SwapError::Probe)?;

        let mut model = lock(&self.shared.model);
        *model = Arc::new(handle);
        // Bump under the model lock so workers that re-clone observe a
        // consistent (version, handle) pair.
        self.shared.model_version.fetch_add(1, Ordering::Release);
        drop(model);
        // Self-heal: a validated new model resets the breaker.
        self.shared.consecutive_panics.store(0, Ordering::Release);
        self.shared.degraded.store(false, Ordering::Release);
        lock(&self.shared.stats).swaps += 1;
        // Wake degraded drains so they resume serving promptly.
        self.shared.not_empty.notify_all();
        Ok(())
    }

    /// Loads one checkpoint file for `net` and [`Server::swap`]s to it —
    /// checksum, fingerprint, and state guards included. A corrupt or
    /// mismatched file is a structured error and the old model keeps
    /// serving (automatic rollback).
    ///
    /// # Errors
    ///
    /// [`SwapError::Load`] for everything
    /// [`ModelHandle::load_file`] reports, plus the [`Server::swap`]
    /// errors.
    pub fn swap_file(&self, net: &Network, path: &Path) -> Result<(), SwapError> {
        let handle = ModelHandle::load_file(net, path)?;
        self.swap(handle)
    }

    /// Swaps to the newest checkpoint in `dir` matching the
    /// `(net, schedule)` fingerprint, returning the [`LoadReport`] naming
    /// every corrupt file the scan skipped — "serve checkpoint N while
    /// N+1 loads" with corruption surfaced instead of warned to stderr.
    ///
    /// # Errors
    ///
    /// [`SwapError::Load`] for everything
    /// [`ModelHandle::load_latest_with_report`] reports, plus the
    /// [`Server::swap`] errors.
    pub fn swap_latest(
        &self,
        net: &Network,
        schedule: &Schedule,
        dir: &Path,
    ) -> Result<LoadReport, SwapError> {
        let (handle, report) = ModelHandle::load_latest_with_report(net, schedule, dir)?;
        self.swap(handle)?;
        Ok(report)
    }

    /// Stops intake, waits for the workers to drain every queued request,
    /// and returns the final counters. Requests submitted after this
    /// starts get [`ServeError::Rejected`].
    pub fn shutdown(mut self) -> ServeStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        lock(&self.shared.queue).closed = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Submits single-sample requests to a [`Server`]. Cheap to clone; safe
/// to share across producer threads.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Shape-checks a sample and builds its job/pending pair.
    fn make_job(&self, sample: &Tensor) -> Result<(Job, Pending), ServeError> {
        let want = self.shared.input;
        let expected = [want.channels, want.height, want.width];
        let shape = sample.shape();
        let ok = shape == expected || (shape.len() == 4 && shape[0] == 1 && shape[1..] == expected);
        if !ok {
            return Err(ServeError::Shape {
                expected: expected.to_vec(),
                found: shape.to_vec(),
            });
        }
        let slot = ResponseSlot::new();
        Ok((
            Job {
                sample: sample.clone(),
                slot: Arc::clone(&slot),
            },
            Pending { slot, taken: false },
        ))
    }

    /// Submits one sample (shape `[c, h, w]` or `[1, c, h, w]`) at the
    /// default priority and deadline. Blocks only while the request queue
    /// is full (backpressure), never after shutdown — a closed server
    /// rejects immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shape`] for a sample that does not match the model
    /// input, [`ServeError::Rejected`] when the server is shut down,
    /// [`ServeError::WorkerFailed`] when it is degraded.
    pub fn submit(&self, sample: &Tensor) -> Result<Pending, ServeError> {
        self.submit_with(sample, SubmitOptions::default())
    }

    /// Like [`Client::submit`] with an explicit priority and deadline.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit`].
    pub fn submit_with(&self, sample: &Tensor, opts: SubmitOptions) -> Result<Pending, ServeError> {
        let (job, pending) = self.make_job(sample)?;
        let (priority, deadline_us) = self.shared.admission(opts);
        let mut qs = lock(&self.shared.queue);
        loop {
            if qs.closed {
                return Err(ServeError::Rejected);
            }
            if self.shared.is_degraded() {
                return Err(ServeError::WorkerFailed);
            }
            if qs.queue.has_room() {
                qs.queue.push(priority, deadline_us, job);
                drop(qs);
                self.shared.not_empty.notify_one();
                return Ok(pending);
            }
            let (guard, _) = self
                .shared
                .not_full
                .wait_timeout(qs, POLL_CAP)
                .unwrap_or_else(PoisonError::into_inner);
            qs = guard;
        }
    }

    /// Non-blocking admission-controlled submit. When the queue is full,
    /// the least important queued request (most expired first, then
    /// lowest priority strictly below `opts.priority`) is shed — answered
    /// [`ServeError::DeadlineExceeded`] or [`ServeError::Overloaded`] —
    /// to admit this one; when nothing queued is less important, *this*
    /// request is refused with [`ServeError::Overloaded`] carrying a
    /// measured-service-rate backoff hint. Never blocks, never silently
    /// drops.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when refused at a full queue, plus
    /// everything [`Client::submit`] reports.
    pub fn try_submit(&self, sample: &Tensor, opts: SubmitOptions) -> Result<Pending, ServeError> {
        let (job, pending) = self.make_job(sample)?;
        let (priority, deadline_us) = self.shared.admission(opts);
        let mut qs = lock(&self.shared.queue);
        if qs.closed {
            return Err(ServeError::Rejected);
        }
        if self.shared.is_degraded() {
            return Err(ServeError::WorkerFailed);
        }
        let now = self.shared.now_us();
        match qs.queue.offer(priority, deadline_us, now, job) {
            Offer::Admitted => {
                drop(qs);
                self.shared.not_empty.notify_one();
                Ok(pending)
            }
            Offer::Shed { victim, expired } => {
                let queue_len = qs.queue.len();
                drop(qs);
                let (_, job) = victim;
                self.shared.answer_victim(job, expired, queue_len);
                self.shared.not_empty.notify_one();
                Ok(pending)
            }
            Offer::Full(_) => {
                let queue_len = qs.queue.len();
                drop(qs);
                Err(ServeError::Overloaded {
                    retry_after_us: self.shared.retry_after_us(queue_len),
                })
            }
        }
    }
}

/// What one collection attempt produced.
enum Collected {
    /// A batch to dispatch (possibly empty if the server degraded while
    /// collecting — the caller just loops).
    Batch(Vec<Job>),
    /// The queue is closed and fully drained; the worker exits.
    Closed,
}

/// Answers every expired queued request with `DeadlineExceeded` — called
/// before each pop so an expired request never enters a batch.
fn answer_expired(shared: &Shared, qs: &mut QueueState) {
    let expired = qs.queue.take_expired(shared.now_us());
    if expired.is_empty() {
        return;
    }
    lock(&shared.stats).expired += expired.len() as u64;
    for (_, job) in expired {
        job.slot.fill(Err(ServeError::DeadlineExceeded));
    }
    shared.not_full.notify_all();
}

/// Collect-dispatch batch assembly for one worker. Holding the collector
/// lock marks this worker as the collector; the policy decides when its
/// batch stops waiting. The deadline clock starts when the worker picks
/// up the first request of a batch.
fn collect(shared: &Shared) -> Collected {
    let _collector = lock(&shared.collector);
    let mut batch: Vec<Job> = Vec::with_capacity(shared.policy.max_batch);
    let mut qs = lock(&shared.queue);
    // First request: block (in bounded slices, so closed/degraded flips
    // are noticed) until something is poppable.
    loop {
        answer_expired(shared, &mut qs);
        if let Some((_, job)) = qs.queue.pop(shared.now_us()) {
            batch.push(job);
            shared.not_full.notify_all();
            break;
        }
        if qs.closed {
            return Collected::Closed;
        }
        if shared.is_degraded() {
            return Collected::Batch(batch);
        }
        let (guard, _) = shared
            .not_empty
            .wait_timeout(qs, POLL_CAP)
            .unwrap_or_else(PoisonError::into_inner);
        qs = guard;
    }
    // Fill until the policy says dispatch (full, or the first-picked
    // request has waited out max_wait_us).
    let start = Instant::now();
    loop {
        let waited_us = start.elapsed().as_micros();
        if shared.policy.must_dispatch(batch.len(), 0, waited_us) {
            break;
        }
        answer_expired(shared, &mut qs);
        if let Some((_, job)) = qs.queue.pop(shared.now_us()) {
            batch.push(job);
            shared.not_full.notify_all();
            continue;
        }
        if qs.closed || shared.is_degraded() {
            break;
        }
        let left = shared.policy.time_left_us(0, waited_us).clamp(1, 25_000) as u64;
        let (guard, _) = shared
            .not_empty
            .wait_timeout(qs, Duration::from_micros(left))
            .unwrap_or_else(PoisonError::into_inner);
        qs = guard;
    }
    Collected::Batch(batch)
}

/// Owns a batch through dispatch: any job still unanswered when this
/// drops — i.e. the dispatching worker panicked — is answered
/// [`ServeError::WorkerFailed`], so even the panic path answers every
/// request exactly once.
struct BatchGuard<'a> {
    shared: &'a Shared,
    jobs: Vec<Option<Job>>,
}

impl<'a> BatchGuard<'a> {
    fn new(shared: &'a Shared, batch: Vec<Job>) -> Self {
        Self {
            shared,
            jobs: batch.into_iter().map(Some).collect(),
        }
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        let unanswered: Vec<Job> = self.jobs.iter_mut().filter_map(Option::take).collect();
        if unanswered.is_empty() {
            return;
        }
        lock(&self.shared.stats).failed += unanswered.len() as u64;
        for job in unanswered {
            job.slot.fill(Err(ServeError::WorkerFailed));
        }
    }
}

/// Stacks a batch into one `[k, c, h, w]` tensor, runs the inference
/// forward on the *current* model version (re-cloning the runner if a
/// swap happened since the last batch), and fans the per-row logits back
/// to the response slots. A requester that already gave up (dropped or
/// timed-out [`Pending`]) is skipped silently. May panic — by injected
/// fault or a genuine model bug — in which case the [`BatchGuard`]
/// answers the batch and the supervisor respawns the worker.
fn dispatch(shared: &Shared, runner: &mut Option<(ModelRunner, u64)>, batch: Vec<Job>) {
    let mut guard = BatchGuard::new(shared, batch);
    let index = shared.batch_counter.fetch_add(1, Ordering::Relaxed);
    if !shared.fault.is_empty() {
        if let Some(stall) = shared.fault.stall_for(index) {
            thread::sleep(stall);
        }
        assert!(
            !shared.fault.should_panic(index),
            "mbs-serve fault injection: worker panic at batch {index}"
        );
    }
    // Refresh the runner inside the guard: even a panicking model clone
    // must answer the batch.
    let version = shared.model_version.load(Ordering::Acquire);
    let stale = runner.as_ref().is_none_or(|&(_, v)| v != version);
    if stale {
        let model = lock(&shared.model);
        let v = shared.model_version.load(Ordering::Acquire);
        *runner = Some((model.runner(), v));
    }
    let (runner, _) = runner.as_mut().expect("runner refreshed above");

    let k = guard.jobs.len();
    let shape = runner.input();
    let mut data = Vec::with_capacity(k * shape.elems());
    for job in guard.jobs.iter().flatten() {
        data.extend_from_slice(job.sample.data());
    }
    let x = Tensor::from_vec(&[k, shape.channels, shape.height, shape.width], data);
    let t0 = Instant::now();
    let y = runner.infer(x);
    shared.note_batch_time(t0.elapsed().as_nanos() as f64);
    let classes = runner.classes();
    let out = y.data();
    for i in 0..k {
        let job = guard.jobs[i].take().expect("each job answered once");
        let logits = out[i * classes..(i + 1) * classes].to_vec();
        job.slot.fill(Ok(Prediction::from_logits(logits)));
    }
    drop(guard);
    lock(&shared.stats).record_batch(k);
}

/// Reject-fast service while degraded: every queued (and newly arriving)
/// request is answered [`ServeError::WorkerFailed`] without touching the
/// model. Returns `true` when the server healed (a swap cleared the
/// flag) and serving should resume, `false` when the queue closed.
fn degraded_drain(shared: &Shared) -> bool {
    let mut qs = lock(&shared.queue);
    loop {
        let drained = qs.queue.drain_all();
        if !drained.is_empty() {
            lock(&shared.stats).failed += drained.len() as u64;
            for (_, job) in drained {
                job.slot.fill(Err(ServeError::WorkerFailed));
            }
            shared.not_full.notify_all();
        }
        if !shared.is_degraded() {
            return true;
        }
        if qs.closed {
            return false;
        }
        let (guard, _) = shared
            .not_empty
            .wait_timeout(qs, POLL_CAP)
            .unwrap_or_else(PoisonError::into_inner);
        qs = guard;
    }
}

/// One supervised serving incarnation: collect and dispatch until the
/// queue closes. Panics propagate to the supervisor in
/// [`worker_thread`]; a normal return means clean shutdown.
fn worker_run(shared: &Shared) {
    let _arena = arena::LocalArena::install();
    // The worker's private runner, tagged with the model version it was
    // cloned from; `dispatch` re-clones after a swap.
    let mut runner: Option<(ModelRunner, u64)> = None;
    loop {
        if shared.is_degraded() {
            if degraded_drain(shared) {
                // Healed by a swap: drop the stale runner and resume.
                runner = None;
                continue;
            }
            return;
        }
        match collect(shared) {
            Collected::Closed => return,
            Collected::Batch(batch) => {
                if batch.is_empty() {
                    continue; // degraded flipped mid-collect
                }
                dispatch(shared, &mut runner, batch);
                // A successful batch proves the model serves: reset the
                // breaker.
                shared.consecutive_panics.store(0, Ordering::Release);
            }
        }
    }
}

/// The supervisor wrapping one worker thread: runs [`worker_run`] under
/// `catch_unwind`, and on a panic counts it, backs off exponentially,
/// and respawns the loop — or, past [`ServeConfig::max_respawns`]
/// consecutive failures, flips the server into degraded mode (the
/// respawned loop then rejects fast until a swap heals it).
fn worker_thread(shared: &Arc<Shared>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_run(shared))) {
            Ok(()) => return,
            Err(_) => {
                let consecutive = shared.consecutive_panics.fetch_add(1, Ordering::AcqRel) + 1;
                let tripped = consecutive > shared.config.max_respawns;
                {
                    let mut stats = lock(&shared.stats);
                    stats.panics += 1;
                    if !tripped {
                        stats.respawns += 1;
                    }
                }
                if tripped && !shared.degraded.swap(true, Ordering::AcqRel) {
                    // Newly degraded: wake every waiter so blocked
                    // submitters and collectors learn fast.
                    shared.not_empty.notify_all();
                    shared.not_full.notify_all();
                }
                let backoff = (BACKOFF_BASE_MS << consecutive.min(6)).min(BACKOFF_CAP_MS);
                thread::sleep(Duration::from_millis(backoff));
            }
        }
    }
}
