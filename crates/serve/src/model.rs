//! Frozen inference models.
//!
//! A [`ModelHandle`] is the serving-side view of a trained network: the IR
//! is lowered through [`mbs_train::lower_inference`] (state imported, batch
//! norms folded into their convolutions) and then never mutated again. The
//! handle itself is `Send + Sync` and cheap to share behind an [`std::sync::Arc`];
//! each worker thread clones a private [`ModelRunner`] from it, because the
//! lowered modules keep per-forward scratch state and so cannot be shared
//! mutably.

use std::fmt;
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_cnn::{FeatureShape, Network};
use mbs_core::{footprint, Schedule};
use mbs_tensor::Tensor;
use mbs_train::checkpoint::{self, CheckpointError, LoadReport, TrainCheckpoint};
use mbs_train::lower::{lower, lower_inference, InferenceLowerError, LowerError};
use mbs_train::{LoweredNet, Module, StateDict, StateError};

/// The seed for the throwaway initial parameters that the imported
/// checkpoint state immediately overwrites — any value works; pinning one
/// keeps handle construction deterministic even for unfolded layers.
const INIT_SEED: u64 = 0x6d62_735f_7365_7276; // "mbs_serv"

/// The answer to one inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Raw classifier outputs, one per class.
    pub logits: Vec<f32>,
    /// Index of the largest logit (first one on exact ties).
    pub class: usize,
}

impl Prediction {
    /// Builds a prediction from raw logits, taking the argmax. Ties break
    /// toward the lower index so the result is deterministic.
    pub fn from_logits(logits: Vec<f32>) -> Self {
        let mut class = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[class] {
                class = i;
            }
        }
        Self { logits, class }
    }
}

/// Why a model failed to load.
#[derive(Debug)]
pub enum ModelError {
    /// The checkpoint file could not be read or decoded (I/O error,
    /// corrupt frame, checksum mismatch, unsupported version, or a
    /// fingerprint that does not match the requested schedule).
    Checkpoint(CheckpointError),
    /// [`ModelHandle::load_latest`] found no usable checkpoint in the
    /// directory.
    NoCheckpoint,
    /// The checkpoint records a different network name than the one being
    /// loaded.
    NetworkMismatch {
        /// Name of the network the caller asked to serve.
        expected: String,
        /// Name recorded in the checkpoint.
        found: String,
    },
    /// The network itself does not lower to a runnable model.
    Lower(LowerError),
    /// The checkpoint state does not fit the lowered model (wrong entry
    /// count or tensor shapes — a checkpoint from a different
    /// architecture that happens to share the name).
    State(StateError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "cannot load checkpoint: {e}"),
            Self::NoCheckpoint => write!(f, "no usable checkpoint found"),
            Self::NetworkMismatch { expected, found } => {
                write!(f, "checkpoint is for network {found:?}, not {expected:?}")
            }
            Self::Lower(e) => write!(f, "{e}"),
            Self::State(e) => write!(f, "checkpoint state does not fit the model: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Checkpoint(e) => Some(e),
            Self::Lower(e) => Some(e),
            Self::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ModelError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<InferenceLowerError> for ModelError {
    fn from(e: InferenceLowerError) -> Self {
        match e {
            InferenceLowerError::Lower(e) => Self::Lower(e),
            InferenceLowerError::State(e) => Self::State(e),
        }
    }
}

/// A frozen, inference-ready model: the lowered net with trained weights
/// imported and batch norms folded, plus the metadata the server needs to
/// validate requests and size batches.
///
/// `ModelHandle` is immutable after construction and `Send + Sync`; share
/// it behind an `Arc` and clone per-thread [`ModelRunner`]s from it.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    name: String,
    net: LoweredNet,
    input: FeatureShape,
    classes: usize,
    per_sample_bytes: usize,
}

impl ModelHandle {
    fn from_parts(source: &Network, net: LoweredNet) -> Self {
        let per_sample_bytes = source
            .nodes()
            .iter()
            .map(footprint::node_space_independent)
            .max()
            .unwrap_or(0);
        Self {
            name: source.name().to_string(),
            net,
            input: source.input(),
            classes: source.output().elems(),
            per_sample_bytes,
        }
    }

    /// Freezes a model straight from a lowered network with *random*
    /// (seed-deterministic) weights — no checkpoint involved. Tests and
    /// benches use this; real deployments load a checkpoint.
    ///
    /// # Errors
    ///
    /// [`ModelError::Lower`] if the network does not lower.
    pub fn from_network(net: &Network, seed: u64) -> Result<Self, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lowered = lower(net, &mut rng).map_err(ModelError::Lower)?;
        lowered.fold_batch_norms();
        Ok(Self::from_parts(net, lowered))
    }

    /// Freezes a model from a [`TrainCheckpoint`] produced by
    /// [`mbs_train::train_grouped`]: verifies the checkpoint names this
    /// network, imports its model state, and folds batch norms.
    ///
    /// # Errors
    ///
    /// [`ModelError::NetworkMismatch`] if the checkpoint belongs to a
    /// different network, [`ModelError::Lower`] / [`ModelError::State`]
    /// if the state does not fit.
    pub fn from_checkpoint(net: &Network, ckpt: &TrainCheckpoint) -> Result<Self, ModelError> {
        if ckpt.net != net.name() {
            return Err(ModelError::NetworkMismatch {
                expected: net.name().to_string(),
                found: ckpt.net.clone(),
            });
        }
        let mut state = StateDict::from_entries(ckpt.model.clone());
        let mut rng = StdRng::seed_from_u64(INIT_SEED);
        let lowered = lower_inference(net, &mut state, &mut rng)?;
        Ok(Self::from_parts(net, lowered))
    }

    /// Loads one checkpoint file and freezes it via
    /// [`ModelHandle::from_checkpoint`].
    ///
    /// # Errors
    ///
    /// [`ModelError::Checkpoint`] for unreadable/corrupt files, plus
    /// everything `from_checkpoint` reports.
    pub fn load_file(net: &Network, path: &Path) -> Result<Self, ModelError> {
        let ckpt = checkpoint::load_file(path)?;
        Self::from_checkpoint(net, &ckpt)
    }

    /// Loads the newest checkpoint in `dir` whose fingerprint matches the
    /// `(net, schedule)` pair — the serving counterpart of the resume path
    /// in [`mbs_train::train_grouped`].
    ///
    /// # Errors
    ///
    /// [`ModelError::NoCheckpoint`] when the directory holds no usable
    /// checkpoint, [`ModelError::Checkpoint`] when the newest decodable
    /// one belongs to a different `(net, schedule)` fingerprint, plus
    /// everything `from_checkpoint` reports.
    pub fn load_latest(net: &Network, schedule: &Schedule, dir: &Path) -> Result<Self, ModelError> {
        Self::load_latest_with_report(net, schedule, dir).map(|(handle, _)| handle)
    }

    /// Like [`ModelHandle::load_latest`], but also returns the
    /// [`LoadReport`] naming every corrupt file the scan had to skip —
    /// the hot-swap path surfaces this so operators learn that the
    /// "latest" model they just swapped in is older than the newest file
    /// on disk.
    ///
    /// # Errors
    ///
    /// Same as [`ModelHandle::load_latest`].
    pub fn load_latest_with_report(
        net: &Network,
        schedule: &Schedule,
        dir: &Path,
    ) -> Result<(Self, LoadReport), ModelError> {
        let fingerprint = schedule.fingerprint(net);
        let (found, report) = checkpoint::load_latest(dir, fingerprint)?;
        match found {
            Some((_, ckpt)) => Ok((Self::from_checkpoint(net, &ckpt)?, report)),
            None => Err(ModelError::NoCheckpoint),
        }
    }

    /// Name of the served network.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected per-sample input shape.
    pub fn input(&self) -> FeatureShape {
        self.input
    }

    /// Length of each prediction's logits: the per-sample output element
    /// count (the class count for classifier nets; the flattened feature
    /// map size for headless ones).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Peak on-chip bytes one sample needs through the widest node — the
    /// same independent-footprint model the scheduler sizes sub-batches
    /// with, used here to cap dynamic batches to the cache budget.
    pub fn per_sample_bytes(&self) -> usize {
        self.per_sample_bytes
    }

    /// Clones a private, mutable runner for one worker thread.
    pub fn runner(&self) -> ModelRunner {
        ModelRunner {
            net: self.net.clone(),
            input: self.input,
            classes: self.classes,
        }
    }
}

/// A worker-private copy of the lowered net. Forward passes mutate
/// internal scratch, so each thread owns one; all runners cloned from the
/// same handle compute bitwise-identical outputs.
#[derive(Debug, Clone)]
pub struct ModelRunner {
    net: LoweredNet,
    input: FeatureShape,
    classes: usize,
}

impl ModelRunner {
    /// Expected per-sample input shape.
    pub fn input(&self) -> FeatureShape {
        self.input
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Inference-only forward over a `[n, c, h, w]` batch, returning the
    /// `[n, classes]` logits. Never trains: no caches are retained, no
    /// running statistics move.
    pub fn infer(&mut self, batch: Tensor) -> Tensor {
        self.net.forward_owned(batch, false)
    }

    /// Runs one sample (shape `[c, h, w]` or `[1, c, h, w]`) and returns
    /// its prediction — the reference path dynamic batching must match
    /// bitwise.
    pub fn infer_one(&mut self, sample: &Tensor) -> Prediction {
        let c = self.input;
        let batched = Tensor::from_vec(&[1, c.channels, c.height, c.width], sample.data().to_vec());
        let y = self.infer(batched);
        Prediction::from_logits(y.data().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_handle_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<ModelHandle>();
        check::<ModelRunner>();
        check::<Prediction>();
    }

    #[test]
    fn prediction_argmax_breaks_ties_low() {
        let p = Prediction::from_logits(vec![0.5, 2.0, 2.0, -1.0]);
        assert_eq!(p.class, 1);
    }
}
