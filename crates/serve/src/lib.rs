//! `mbs-serve`: an overload-safe dynamic-batching inference front-end
//! over the lowered CNN runtime.
//!
//! The paper's central discipline — size work to the on-chip cache budget
//! in [`HardwareConfig`](mbs_core::HardwareConfig) — applies to serving
//! just as it does to training: requests arriving one sample at a time
//! are coalesced into dynamic batches bounded by **both** a max-wait
//! deadline and the cache-budget cap the scheduler's footprint model
//! yields ([`BatchPolicy`]). The pieces:
//!
//! - [`ModelHandle`] ([`model`]): a frozen, `Send + Sync` model loaded
//!   from a [`TrainCheckpoint`](mbs_train::TrainCheckpoint) through the
//!   inference lowering path ([`mbs_train::lower_inference`]) — state
//!   imported, batch norms folded into their convolutions, no training
//!   caches.
//! - [`BatchPolicy`] / [`ShedQueue`] ([`batcher`]): the pure dispatch
//!   rule (full or deadline-expired) and the bounded priority queue with
//!   shed-on-full admission, shared verbatim by the worker loop and the
//!   property tests.
//! - [`Server`] / [`Client`] ([`server`]): thread-per-core workers behind
//!   the shed queue, responses fanned back over per-request oneshot
//!   slots, graceful drain on shutdown — plus the robustness layer:
//!   deadline shedding ([`ServeError::DeadlineExceeded`]), admission
//!   control with measured-backoff refusals ([`ServeError::Overloaded`]),
//!   panic supervision with a respawn circuit breaker
//!   ([`ServeError::WorkerFailed`]), and validated hot model swap with
//!   automatic rollback ([`Server::swap`]).
//! - [`ServeFaultPlan`] ([`faults`]): deterministic worker panics and
//!   stalls, the serving counterpart of the checkpoint
//!   [`FaultPlan`](mbs_train::FaultPlan), driving the chaos tests.
//!
//! Batched serving is **bitwise-identical** to running the same samples
//! one at a time through the same handle: every inference-mode operator
//! is per-sample (or per-element), and the kernels reduce each output
//! element in a batch-independent order. The `equivalence` test suite
//! pins this for every toy net in the zoo, and the swap tests extend it
//! across model versions: every response is bitwise attributable to
//! exactly one served model.

#![warn(missing_docs)]

pub mod batcher;
pub mod faults;
pub mod model;
pub mod server;

pub use batcher::{BatchPolicy, Offer, QueuedMeta, ShedQueue};
pub use faults::ServeFaultPlan;
pub use model::{ModelError, ModelHandle, ModelRunner, Prediction};
pub use server::{
    Client, Pending, ServeConfig, ServeError, ServeStats, Server, SubmitOptions, SwapError,
};
