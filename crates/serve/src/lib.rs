//! `mbs-serve`: a dynamic-batching inference front-end over the lowered
//! CNN runtime.
//!
//! The paper's central discipline — size work to the on-chip cache budget
//! in [`HardwareConfig`](mbs_core::HardwareConfig) — applies to serving
//! just as it does to training: requests arriving one sample at a time
//! are coalesced into dynamic batches bounded by **both** a max-wait
//! deadline and the cache-budget cap the scheduler's footprint model
//! yields ([`BatchPolicy`]). The pieces:
//!
//! - [`ModelHandle`] ([`model`]): a frozen, `Send + Sync` model loaded
//!   from a [`TrainCheckpoint`](mbs_train::TrainCheckpoint) through the
//!   inference lowering path ([`mbs_train::lower_inference`]) — state
//!   imported, batch norms folded into their convolutions, no training
//!   caches.
//! - [`BatchPolicy`] ([`batcher`]): the pure dispatch rule (full or
//!   deadline-expired), shared verbatim by the worker loop and the
//!   property tests.
//! - [`Server`] / [`Client`] ([`server`]): thread-per-core workers behind
//!   a bounded MPSC queue, responses fanned back over per-request oneshot
//!   channels, graceful drain on shutdown.
//!
//! Batched serving is **bitwise-identical** to running the same samples
//! one at a time through the same handle: every inference-mode operator
//! is per-sample (or per-element), and the kernels reduce each output
//! element in a batch-independent order. The `equivalence` test suite
//! pins this for every toy net in the zoo.

#![warn(missing_docs)]

pub mod batcher;
pub mod model;
pub mod server;

pub use batcher::BatchPolicy;
pub use model::{ModelError, ModelHandle, ModelRunner, Prediction};
pub use server::{Client, Pending, ServeConfig, ServeError, ServeStats, Server};
