//! Hot model swap: every response must be bitwise attributable to
//! exactly one model version (never a blend, never a half-swapped
//! model), a failed swap must leave the old model serving (rollback is
//! the absence of the flip), and a successful swap must heal a server
//! that the panic circuit breaker degraded.

use std::fs;
use std::sync::{mpsc, Once};
use std::thread;
use std::time::{Duration, Instant};

use mbs_cnn::networks::toy;
use mbs_cnn::{FeatureShape, Network};
use mbs_serve::{
    ModelHandle, Prediction, ServeConfig, ServeError, ServeFaultPlan, Server, SwapError,
};
use mbs_tensor::Tensor;

/// Runs `body` on a helper thread and panics if it does not finish within
/// `secs`.
fn with_timeout(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("swap test body panicked"),
        Err(_) => panic!("swap scenario deadlocked (exceeded {secs}s)"),
    }
}

/// Silences injected worker panics (marked "fault injection"); real
/// panics still report.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("fault injection") {
                default_hook(info);
            }
        }));
    });
}

fn cheap_net() -> Network {
    toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 4)
}

fn sample(shape: FeatureShape, salt: usize) -> Tensor {
    Tensor::from_vec(
        &[shape.channels, shape.height, shape.width],
        (0..shape.elems())
            .map(|v| (((v * 13 + salt * 101) % 19) as f32 - 9.0) / 5.0)
            .collect(),
    )
}

/// Two same-architecture models with different weights, plus per-sample
/// reference predictions from each — the attribution oracle.
struct Versions {
    a: ModelHandle,
    b: ModelHandle,
    samples: Vec<Tensor>,
    ref_a: Vec<Prediction>,
    ref_b: Vec<Prediction>,
}

/// Builds the oracle over `n` probe samples. Panics if the versions are
/// indistinguishable on the probe set (they never are for distinct
/// seeds).
fn two_versions(n: usize) -> Versions {
    let net = cheap_net();
    let a = ModelHandle::from_network(&net, 1).expect("freeze A");
    let b = ModelHandle::from_network(&net, 2).expect("freeze B");
    let samples: Vec<Tensor> = (0..n).map(|i| sample(a.input(), i)).collect();
    let (mut ra, mut rb) = (a.runner(), b.runner());
    let ref_a: Vec<Prediction> = samples.iter().map(|s| ra.infer_one(s)).collect();
    let ref_b: Vec<Prediction> = samples.iter().map(|s| rb.infer_one(s)).collect();
    assert!(
        ref_a.iter().zip(&ref_b).any(|(x, y)| x.logits != y.logits),
        "versions must be distinguishable for attribution to mean anything"
    );
    Versions {
        a,
        b,
        samples,
        ref_a,
        ref_b,
    }
}

/// Before the swap every response is bitwise version A; after it, bitwise
/// version B; and a stream crossing repeated swaps only ever sees one of
/// the two — exactly one model answers each request.
#[test]
fn every_response_is_bitwise_attributable_to_one_version() {
    with_timeout(120, || {
        const N: usize = 24;
        let Versions {
            a,
            b,
            samples,
            ref_a,
            ref_b,
        } = two_versions(N);
        let server = Server::start(
            &a,
            ServeConfig {
                workers: 2,
                max_batch: 4,
                max_wait_us: 300,
                queue_depth: 32,
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let wave = |client: &mbs_serve::Client| -> Vec<Prediction> {
            samples
                .iter()
                .map(|s| client.submit(s).expect("submit"))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|p| p.wait_timeout(Duration::from_secs(60)).expect("response"))
                .collect()
        };

        // Wave 1: all version A, bitwise.
        for (i, (got, want)) in wave(&client).iter().zip(&ref_a).enumerate() {
            assert_eq!(
                got.logits, want.logits,
                "pre-swap sample {i} is not version A"
            );
        }
        server.swap(b.clone()).expect("swap to B");
        // Wave 2: all version B, bitwise.
        for (i, (got, want)) in wave(&client).iter().zip(&ref_b).enumerate() {
            assert_eq!(
                got.logits, want.logits,
                "post-swap sample {i} is not version B"
            );
        }

        // A stream crossing many swaps: every response matches exactly
        // one of the two references — no torn reads, no blended model.
        let streamer = {
            let client = server.client();
            let samples = samples.clone();
            let (ref_a, ref_b) = (ref_a.clone(), ref_b.clone());
            thread::spawn(move || {
                for round in 0..8 {
                    for (i, s) in samples.iter().enumerate() {
                        let got = client
                            .submit(s)
                            .expect("stream submit")
                            .wait_timeout(Duration::from_secs(60))
                            .expect("stream response");
                        let is_a = got.logits == ref_a[i].logits;
                        let is_b = got.logits == ref_b[i].logits;
                        assert!(
                            is_a ^ is_b,
                            "round {round} sample {i}: response matches {} versions",
                            if is_a && is_b { "both" } else { "neither" }
                        );
                    }
                }
            })
        };
        for flip in 0..6 {
            thread::sleep(Duration::from_millis(5));
            let next = if flip % 2 == 0 { a.clone() } else { b.clone() };
            server.swap(next).expect("mid-stream swap");
        }
        streamer.join().expect("streamer panicked");
        let stats = server.shutdown();
        assert_eq!(stats.swaps, 7, "every accepted swap counted");
        assert_eq!(stats.failed, 0, "no request was lost across swaps");
    });
}

/// A corrupt swap file and a geometry-mismatched replacement are both
/// refused — and the refusal *is* the rollback: the old model keeps
/// answering bitwise-identically.
#[test]
fn failed_swaps_leave_the_old_model_serving() {
    with_timeout(60, || {
        const N: usize = 8;
        let Versions {
            a, samples, ref_a, ..
        } = two_versions(N);
        let server = Server::start(
            &a,
            ServeConfig {
                workers: 1,
                max_batch: 4,
                max_wait_us: 200,
                queue_depth: 16,
                ..ServeConfig::default()
            },
        );
        let client = server.client();

        // Corrupt checkpoint file: refused at load.
        let dir = std::env::temp_dir().join(format!("mbsserve-swaproll-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt-00000001.mbsckpt");
        fs::write(&path, b"MBSCKPT but not really").expect("write");
        match server.swap_file(&cheap_net(), &path) {
            Err(SwapError::Load(_)) => {}
            other => panic!("expected a load refusal, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);

        // Geometry mismatch: a model with a different input/output shape
        // is refused before any flip.
        let other_net = toy::conv_chain(&[4], FeatureShape::new(1, 4, 4), 2);
        let other = ModelHandle::from_network(&other_net, 3).expect("freeze other");
        match server.swap(other) {
            Err(SwapError::Incompatible { .. }) => {}
            other => panic!("expected a geometry refusal, got {other:?}"),
        }

        // Rollback check: still version A, bitwise.
        for (i, s) in samples.iter().enumerate() {
            let got = client
                .submit(s)
                .expect("submit")
                .wait_timeout(Duration::from_secs(30))
                .expect("response");
            assert_eq!(got.logits, ref_a[i].logits, "sample {i} is not version A");
        }
        let stats = server.shutdown();
        assert_eq!(stats.swaps, 0, "no refused swap may count as a flip");
    });
}

/// The circuit breaker: repeated consecutive panics flip the server into
/// reject-fast degraded mode (every pending and new request answered
/// `WorkerFailed`, nothing hangs), and a successful swap heals it back
/// into service.
#[test]
fn circuit_breaker_degrades_and_a_swap_heals() {
    quiet_injected_panics();
    with_timeout(60, || {
        let net = cheap_net();
        let a = ModelHandle::from_network(&net, 1).expect("freeze");
        // Panic at the first two dispatches with a breaker allowing one
        // respawn: the second consecutive panic trips it.
        let server = Server::start_with_faults(
            &a,
            ServeConfig {
                workers: 1,
                max_batch: 1,
                max_wait_us: 0,
                queue_depth: 8,
                max_respawns: 1,
                ..ServeConfig::default()
            },
            ServeFaultPlan::default().panic_at(0).panic_at(1),
        );
        let client = server.client();
        let s = sample(a.input(), 5);

        // Both doomed batches answer WorkerFailed — never hang, never a
        // prediction from a crashed worker.
        for i in 0..2 {
            let got = client
                .submit(&s)
                .expect("submit into doomed batch")
                .wait_timeout(Duration::from_secs(30));
            assert_eq!(got, Err(ServeError::WorkerFailed), "doomed request {i}");
        }

        // The breaker trips shortly after the second panic; once tripped,
        // submissions reject fast instead of feeding a crashing model.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !server.is_degraded() {
            assert!(Instant::now() < deadline, "breaker never tripped");
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            client.submit(&s).map(|_| ()),
            Err(ServeError::WorkerFailed),
            "degraded servers reject fast"
        );

        // A validated swap heals: the breaker resets and serving resumes
        // (dispatch indices 0 and 1 are spent, so no more injected
        // panics).
        let b = ModelHandle::from_network(&net, 2).expect("freeze B");
        let want = b.runner().infer_one(&s);
        server.swap(b).expect("healing swap");
        assert!(!server.is_degraded(), "swap resets the breaker");
        let got = client
            .submit(&s)
            .expect("submit after heal")
            .wait_timeout(Duration::from_secs(30))
            .expect("healed server answers");
        assert_eq!(
            got.logits, want.logits,
            "healed server serves the new model"
        );

        let stats = server.shutdown();
        assert_eq!(stats.panics, 2);
        assert_eq!(stats.respawns, 1, "the tripping panic is not a respawn");
        assert_eq!(
            stats.failed, 2,
            "both doomed requests answered WorkerFailed"
        );
        assert_eq!(stats.swaps, 1);
    });
}
