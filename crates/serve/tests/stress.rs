//! Concurrency stress: many producers hammering one server with jittered
//! arrivals. Every request must get exactly one response — none lost,
//! none duplicated, all correct — and shutdown must drain the queue
//! without deadlocking. Each scenario runs under a hard timeout so a hang
//! fails the test instead of wedging the suite.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mbs_cnn::networks::toy;
use mbs_cnn::FeatureShape;
use mbs_serve::{ModelHandle, Prediction, ServeConfig, ServeError, Server};
use mbs_tensor::Tensor;

/// Runs `body` on a helper thread and panics if it does not finish within
/// `secs` — the anti-deadlock harness for every scenario here.
fn with_timeout(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("stress body panicked"),
        Err(_) => panic!("stress scenario deadlocked (exceeded {secs}s)"),
    }
}

fn cheap_handle() -> ModelHandle {
    let net = toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 4);
    ModelHandle::from_network(&net, 7).expect("freeze model")
}

fn sample(shape: FeatureShape, salt: usize) -> Tensor {
    Tensor::from_vec(
        &[shape.channels, shape.height, shape.width],
        (0..shape.elems())
            .map(|v| (((v * 13 + salt * 101) % 19) as f32 - 9.0) / 5.0)
            .collect(),
    )
}

#[test]
fn every_request_gets_exactly_one_correct_response() {
    with_timeout(120, || {
        const PRODUCERS: usize = 4;
        const REQUESTS: usize = 25;
        let handle = Arc::new(cheap_handle());
        let server = Server::start(
            &handle,
            ServeConfig {
                workers: 2,
                max_batch: 5,
                max_wait_us: 300,
                queue_depth: 16,
                ..ServeConfig::default()
            },
        );
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let client = server.client();
                let handle = Arc::clone(&handle);
                thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(p as u64);
                    let mut reference = handle.runner();
                    let mut answered = 0usize;
                    for j in 0..REQUESTS {
                        let s = sample(handle.input(), p * REQUESTS + j);
                        let expect = reference.infer_one(&s);
                        let pending = client.submit(&s).expect("submit");
                        // Randomized arrival jitter so batches form with
                        // every size and worker interleaving.
                        thread::sleep(Duration::from_micros(rng.gen_range(0u64..400)));
                        let got: Prediction = pending
                            .wait_timeout(Duration::from_secs(60))
                            .expect("response");
                        assert_eq!(expect, got, "producer {p} request {j}");
                        answered += 1;
                    }
                    answered
                })
            })
            .collect();
        let answered: usize = producers
            .into_iter()
            .map(|p| p.join().expect("producer panicked"))
            .sum();
        assert_eq!(answered, PRODUCERS * REQUESTS);
        let stats = server.shutdown();
        // Exactly one response per request: the counters agree with the
        // histogram, nothing lost, nothing duplicated.
        assert_eq!(stats.requests, (PRODUCERS * REQUESTS) as u64);
        let hist_total: u64 = stats
            .histogram
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        assert_eq!(hist_total, stats.requests);
        assert_eq!(stats.histogram.iter().sum::<u64>(), stats.batches);
    });
}

#[test]
fn shutdown_drains_queued_requests() {
    with_timeout(60, || {
        // Not a multiple of max_batch, so the final partial batch only
        // dispatches because shutdown's disconnect cuts the wait short.
        const BURST: usize = 10;
        let handle = cheap_handle();
        let mut reference = handle.runner();
        let server = Server::start(
            &handle,
            ServeConfig {
                workers: 2,
                max_batch: 4,
                // A long deadline: shutdown must still answer everything
                // promptly because disconnect cuts the wait short.
                max_wait_us: 5_000_000,
                queue_depth: BURST,
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let samples: Vec<Tensor> = (0..BURST).map(|i| sample(handle.input(), i)).collect();
        let pending: Vec<_> = samples
            .iter()
            .map(|s| client.submit(s).expect("submit"))
            .collect();
        // Shut down with the burst still in flight: every accepted
        // request must be answered, not abandoned.
        let stats = server.shutdown();
        assert_eq!(stats.requests, BURST as u64);
        for (i, (p, s)) in pending.into_iter().zip(&samples).enumerate() {
            let got = p
                .wait_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("request {i} lost in shutdown: {e}"));
            assert_eq!(got, reference.infer_one(s), "request {i}");
        }
        // The server is gone: new submissions reject cleanly, no hang.
        assert_eq!(
            client.submit(&samples[0]).map(|_| ()),
            Err(ServeError::Rejected)
        );
    });
}
