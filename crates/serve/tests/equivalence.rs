//! Dynamic batching must not change the numbers: for every toy net in the
//! zoo, serving through batches of any size is **bitwise-identical** to
//! running each sample alone through the same frozen handle. This is the
//! contract that lets the server coalesce freely — batch composition is
//! purely a throughput decision, never a correctness one.
//!
//! Each net is checked across batch caps {1, 3, 7, max} (max = the
//! cache-budget cap for a 1 MiB buffer, the same bound
//! `ServeConfig::for_model` would derive) and both 1 and 2 worker
//! threads, with enough requests to exercise full batches plus a partial
//! remainder.

use std::time::Duration;

use mbs_cnn::networks::toy;
use mbs_cnn::{FeatureShape, Network};
use mbs_serve::{BatchPolicy, ModelHandle, Prediction, ServeConfig, Server};
use mbs_tensor::Tensor;

/// Deterministic, sample-unique input data.
fn sample(shape: FeatureShape, salt: usize) -> Tensor {
    Tensor::from_vec(
        &[shape.channels, shape.height, shape.width],
        (0..shape.elems())
            .map(|v| (((v * 31 + salt * 97) % 23) as f32 - 11.0) / 7.0)
            .collect(),
    )
}

/// The "max" batch size of the satellite spec: what the budget policy
/// yields for a 1 MiB cache buffer (kept small so debug-mode forwards
/// stay fast), never below 2 so it differs from the trivial cap.
fn max_cap(handle: &ModelHandle) -> usize {
    BatchPolicy::budget_batch_cap(handle.per_sample_bytes(), 1 << 20).max(2)
}

fn check_net(net: &Network) {
    let handle = ModelHandle::from_network(net, 42).expect("freeze model");
    let mut reference = handle.runner();
    let caps = [1, 3, 7, max_cap(&handle)];
    let n = 2 * caps.iter().max().copied().unwrap() + 1;
    let samples: Vec<Tensor> = (0..n).map(|i| sample(handle.input(), i)).collect();
    let expected: Vec<Prediction> = samples.iter().map(|s| reference.infer_one(s)).collect();

    for max_batch in caps {
        for workers in [1, 2] {
            let count = 2 * max_batch + 1;
            let server = Server::start(
                &handle,
                ServeConfig {
                    workers,
                    max_batch,
                    max_wait_us: 20_000,
                    queue_depth: count.max(8),
                    ..ServeConfig::default()
                },
            );
            let client = server.client();
            let pending: Vec<_> = samples[..count]
                .iter()
                .map(|s| client.submit(s).expect("submit"))
                .collect();
            let got: Vec<Prediction> = pending
                .into_iter()
                .map(|p| p.wait_timeout(Duration::from_secs(120)).expect("response"))
                .collect();
            let stats = server.shutdown();
            for (i, (e, g)) in expected[..count].iter().zip(&got).enumerate() {
                assert_eq!(
                    e,
                    g,
                    "{}: sample {i} diverged at max_batch={max_batch} workers={workers}",
                    net.name()
                );
            }
            assert_eq!(stats.requests, count as u64, "{}", net.name());
            for (size, &batches) in stats.histogram.iter().enumerate() {
                assert!(
                    batches == 0 || size <= max_batch,
                    "{}: dispatched a batch of {size} past the cap {max_batch}",
                    net.name()
                );
            }
        }
    }
}

#[test]
fn fig1_toy_batched_equals_single() {
    check_net(&toy::fig1_toy());
}

#[test]
fn tiny_resnet_batched_equals_single() {
    check_net(&toy::tiny_resnet(1, 4));
}

#[test]
fn runtime_mix_batched_equals_single() {
    check_net(&toy::runtime_mix(8, 4));
}

#[test]
fn tiny_inception_batched_equals_single() {
    check_net(&toy::tiny_inception(8, 4));
}

#[test]
fn tiny_alexnet_batched_equals_single() {
    check_net(&toy::tiny_alexnet(8, 4));
}

#[test]
fn conv_chain_batched_equals_single() {
    check_net(&toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 4));
}
