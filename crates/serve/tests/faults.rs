//! Fault paths: loading damaged or mismatched checkpoints must produce
//! structured [`ModelError`]s (never panics, never silently-wrong
//! models), and a server that has shut down must reject — not hang —
//! late requests. Corruption styles mirror the PR-6 `FaultPlan` kinds:
//! byte flips, truncation, and outright garbage.

use std::fs;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_cnn::networks::toy;
use mbs_cnn::{FeatureShape, Network};
use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
use mbs_serve::{ModelError, ModelHandle, ServeConfig, ServeError, Server};
use mbs_tensor::Tensor;
use mbs_train::checkpoint::{self, CheckpointError, TrainCheckpoint};
use mbs_train::{lower, Module, StateDict};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbsserve-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A checkpoint holding real exported state for `net`, as
/// `train_grouped` would have written after step zero.
fn checkpoint_for(net: &Network, fingerprint: u64) -> TrainCheckpoint {
    let mut model = lower(net, &mut StdRng::seed_from_u64(3)).expect("lower");
    let mut state = StateDict::default();
    model.export_state(&mut state);
    TrainCheckpoint {
        fingerprint,
        net: net.name().to_string(),
        epoch: 0,
        step_in_epoch: 0,
        loss_sum: 0.0,
        steps: 0,
        rng: vec![1, 2, 3, 4],
        model: state.into_entries(),
        velocities: Vec::new(),
        curve: Vec::new(),
    }
}

fn cheap_net() -> Network {
    toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 4)
}

#[test]
fn byte_flipped_checkpoint_is_a_format_error() {
    let dir = temp_dir("flip");
    let net = cheap_net();
    let path = checkpoint::save(&dir, 1, &checkpoint_for(&net, 11), 3).expect("save");
    let mut bytes = fs::read(&path).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40; // FaultPlan-style single-byte flip
    fs::write(&path, &bytes).expect("write");
    match ModelHandle::load_file(&net, &path) {
        Err(ModelError::Checkpoint(CheckpointError::Format(_))) => {}
        other => panic!("expected a format error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_checkpoint_is_a_format_error() {
    let dir = temp_dir("trunc");
    let net = cheap_net();
    let path = checkpoint::save(&dir, 1, &checkpoint_for(&net, 12), 3).expect("save");
    let bytes = fs::read(&path).expect("read");
    fs::write(&path, &bytes[..bytes.len() / 3]).expect("write");
    match ModelHandle::load_file(&net, &path) {
        Err(ModelError::Checkpoint(CheckpointError::Format(_))) => {}
        other => panic!("expected a format error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_file_is_a_format_error() {
    let dir = temp_dir("garbage");
    fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ckpt-00000001.mbsckpt");
    fs::write(&path, b"this was never a checkpoint").expect("write");
    match ModelHandle::load_file(&cheap_net(), &path) {
        Err(ModelError::Checkpoint(CheckpointError::Format(_))) => {}
        other => panic!("expected a format error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_for_another_network_is_a_mismatch_error() {
    let net = cheap_net();
    let ckpt = checkpoint_for(&net, 13);
    let other = toy::runtime_mix(8, 4);
    match ModelHandle::from_checkpoint(&other, &ckpt) {
        Err(ModelError::NetworkMismatch { expected, found }) => {
            assert_eq!(expected, other.name());
            assert_eq!(found, net.name());
        }
        other => panic!("expected a network mismatch, got {other:?}"),
    }
}

#[test]
fn checkpoint_with_foreign_state_is_a_state_error() {
    // Same name, different architecture: the positional state walk must
    // notice (shape mismatch / missing / leftover), not mis-assign.
    let net = cheap_net();
    let other = toy::runtime_mix(8, 4);
    let mut ckpt = checkpoint_for(&other, 14);
    ckpt.net = net.name().to_string();
    match ModelHandle::from_checkpoint(&net, &ckpt) {
        Err(ModelError::State(_)) => {}
        other => panic!("expected a state error, got {other:?}"),
    }
}

#[test]
fn load_latest_enforces_the_schedule_fingerprint() {
    let dir = temp_dir("fingerprint");
    let net = cheap_net();
    let hw = HardwareConfig::new();
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    let fp = schedule.fingerprint(&net);

    // Empty (nonexistent) directory: structured NoCheckpoint.
    match ModelHandle::load_latest(&net, &schedule, &dir) {
        Err(ModelError::NoCheckpoint) => {}
        other => panic!("expected NoCheckpoint, got {other:?}"),
    }

    // A checkpoint for some *other* (net, schedule) pair: hard error.
    checkpoint::save(&dir, 1, &checkpoint_for(&net, fp ^ 0xdead), 3).expect("save");
    match ModelHandle::load_latest(&net, &schedule, &dir) {
        Err(ModelError::Checkpoint(CheckpointError::FingerprintMismatch { .. })) => {}
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }

    // The matching checkpoint loads and serves.
    checkpoint::save(&dir, 2, &checkpoint_for(&net, fp), 3).expect("save");
    let handle = ModelHandle::load_latest(&net, &schedule, &dir).expect("load");
    let shape = handle.input();
    let sample = Tensor::full(&[shape.channels, shape.height, shape.width], 0.25);
    let p = handle.runner().infer_one(&sample);
    assert_eq!(p.logits.len(), handle.classes());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn requests_after_shutdown_reject_cleanly() {
    let handle = ModelHandle::from_network(&cheap_net(), 5).expect("freeze");
    let server = Server::start(
        &handle,
        ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait_us: 100,
            queue_depth: 4,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let shape = handle.input();
    let sample = Tensor::full(&[shape.channels, shape.height, shape.width], 0.5);
    // Sanity: the live server answers.
    client
        .submit(&sample)
        .expect("submit")
        .wait_timeout(std::time::Duration::from_secs(30))
        .expect("response");
    server.shutdown();
    // A late request fails fast with a structured rejection — no hang.
    assert!(matches!(client.submit(&sample), Err(ServeError::Rejected)));
    // Shape errors are structured too, shutdown or not.
    let bad = Tensor::full(&[1, 2, 2], 0.0);
    assert!(matches!(client.submit(&bad), Err(ServeError::Shape { .. })));
}
