//! Property tests for the dispatch policy. The simulation below mirrors
//! the worker collect loop exactly — same `BatchPolicy` arithmetic, but
//! on a virtual microsecond clock — so the invariants it proves are the
//! ones the server runs under:
//!
//! 1. no batch ever exceeds the configured max batch size,
//! 2. no batch ever exceeds the cache-budget bound,
//! 3. no request is held past the max-wait deadline once a collector has
//!    picked it up, and
//! 4. every request lands in exactly one batch.

use proptest::prelude::*;

use mbs_serve::{BatchPolicy, Offer, ShedQueue};

/// One simulated dispatch: how many requests it carried and how long its
/// oldest request waited (pickup → dispatch, virtual µs).
struct SimBatch {
    size: usize,
    held_us: u128,
}

/// Replays the worker collect loop over arrival times on a virtual
/// clock. The collector picks up the first pending request (no sooner
/// than its arrival), then keeps taking requests until the policy says
/// dispatch: full, or the pickup deadline passes (a timeout dispatches
/// exactly at the deadline, like `recv_timeout`).
fn simulate(policy: BatchPolicy, arrivals: &[u128]) -> Vec<SimBatch> {
    let mut batches = Vec::new();
    let mut now: u128 = 0;
    let mut i = 0;
    while i < arrivals.len() {
        now = now.max(arrivals[i]);
        let oldest = now;
        let mut size = 1;
        i += 1;
        loop {
            if policy.must_dispatch(size, oldest, now) {
                break;
            }
            let deadline = oldest + policy.max_wait_us;
            match arrivals.get(i) {
                Some(&t) if t.max(now) < deadline => {
                    now = t.max(now);
                    size += 1;
                    i += 1;
                }
                _ => {
                    now = deadline;
                    break;
                }
            }
        }
        batches.push(SimBatch {
            size,
            held_us: now - oldest,
        });
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn batches_respect_caps_deadlines_and_conservation(
        limit in 1usize..24,
        per_sample_bytes in 0usize..4096,
        buffer_bytes in 0usize..65536,
        max_wait_us in 0u64..5000,
        gaps in proptest::collection::vec(0u64..2000, 1usize..80),
    ) {
        let policy = BatchPolicy::new(
            limit,
            per_sample_bytes,
            buffer_bytes,
            u128::from(max_wait_us),
        );
        // Arrival stream: cumulative jittered gaps (bursts when gap 0).
        let mut t: u128 = 0;
        let arrivals: Vec<u128> = gaps
            .iter()
            .map(|&g| {
                t += u128::from(g);
                t
            })
            .collect();
        let batches = simulate(policy, &arrivals);
        let budget_cap = BatchPolicy::budget_batch_cap(per_sample_bytes, buffer_bytes);
        let mut total = 0usize;
        for b in &batches {
            prop_assert!(b.size >= 1, "empty batch dispatched");
            prop_assert!(
                b.size <= limit.max(1),
                "batch of {} exceeds the configured limit {limit}",
                b.size
            );
            prop_assert!(
                b.size <= budget_cap,
                "batch of {} exceeds the cache-budget bound {budget_cap}",
                b.size
            );
            prop_assert!(
                b.held_us <= u128::from(max_wait_us),
                "oldest request held {}us past a {}us deadline",
                b.held_us,
                max_wait_us
            );
            total += b.size;
        }
        // Conservation: every arrival is in exactly one batch.
        prop_assert_eq!(total, arrivals.len());
    }

    #[test]
    fn zero_wait_policies_serve_immediately(
        limit in 1usize..8,
        gaps in proptest::collection::vec(0u64..50, 1usize..40),
    ) {
        // With no wait allowance every pickup dispatches at once.
        let policy = BatchPolicy::new(limit, 0, 0, 0);
        let mut t: u128 = 0;
        let arrivals: Vec<u128> = gaps.iter().map(|&g| { t += u128::from(g); t }).collect();
        for b in simulate(policy, &arrivals) {
            prop_assert_eq!(b.size, 1);
            prop_assert_eq!(b.held_us, 0u128);
        }
    }

    /// Replays a random admit/serve interleaving through a [`ShedQueue`]
    /// on a virtual clock and checks the shedding invariants the server
    /// relies on:
    ///
    /// 1. an expired request never enters a batch (`pop` skips it),
    /// 2. shedding only ever evicts expired or strictly-lower-priority
    ///    work — an unexpired request is never displaced by an equal or
    ///    lower priority arrival, and
    /// 3. every request is accounted for exactly once (admitted and
    ///    served, shed, refused, expired, or still queued at the end).
    #[test]
    fn shed_queue_preserves_priority_and_conservation(
        capacity in 1usize..12,
        ops in proptest::collection::vec(
            // (advance clock by, priority, deadline offset: 0 = none, pop instead of offer)
            (0u64..40, 0u8..4, 0u64..60, proptest::bool::ANY),
            1usize..120,
        ),
    ) {
        let mut q: ShedQueue<usize> = ShedQueue::new(capacity);
        let mut now: u128 = 0;
        let mut offered = 0usize;
        let mut served = 0usize;
        let mut shed = 0usize;
        let mut refused = 0usize;
        let mut expired_count = 0usize;
        for (advance, priority, deadline_offset, is_pop) in ops {
            let (advance, deadline_offset) = (u128::from(advance), u128::from(deadline_offset));
            now += advance;
            // The collector's pre-pop harvest: expired entries leave the
            // queue through the deadline path, never through a batch.
            expired_count += q.take_expired(now).len();
            if is_pop {
                if let Some((meta, _)) = q.pop(now) {
                    prop_assert!(
                        !meta.expired(now),
                        "pop returned an expired request (deadline {:?} at t={now})",
                        meta.deadline_us
                    );
                    served += 1;
                }
                continue;
            }
            let deadline = (deadline_offset > 0).then(|| now + deadline_offset);
            let id = offered;
            offered += 1;
            match q.offer(priority, deadline, now, id) {
                Offer::Admitted => {}
                Offer::Shed { victim: (meta, _), expired } => {
                    prop_assert!(
                        expired == meta.expired(now),
                        "shed mislabeled its victim"
                    );
                    prop_assert!(
                        expired || meta.priority < priority,
                        "unexpired priority-{} victim shed for a priority-{priority} arrival",
                        meta.priority
                    );
                    if expired { expired_count += 1; } else { shed += 1; }
                }
                Offer::Full(_) => refused += 1,
            }
        }
        let leftover = q.drain_all().len();
        prop_assert_eq!(
            served + shed + refused + expired_count + leftover,
            offered,
            "requests lost or duplicated across admit/serve/shed paths"
        );
    }
}
