//! Chaos: sustained overload, injected worker panics, slow-worker
//! stalls, and corrupt swap files — all at once, under jittered
//! concurrent producers. The invariant is exact accounting: **every
//! admitted request gets exactly one response** (a prediction or a
//! structured error), the server keeps serving after every fault, and a
//! request refused at admission is refused with a structured
//! [`ServeError::Overloaded`], never silently dropped. Each scenario
//! runs under a hard timeout so a hang fails instead of wedging the
//! suite.

use std::fs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mbs_cnn::networks::toy;
use mbs_cnn::FeatureShape;
use mbs_serve::{
    ModelHandle, ServeConfig, ServeError, ServeFaultPlan, Server, SubmitOptions, SwapError,
};
use mbs_tensor::Tensor;

/// Runs `body` on a helper thread and panics if it does not finish within
/// `secs` — the anti-deadlock harness for every scenario here.
fn with_timeout(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("chaos body panicked"),
        Err(_) => panic!("chaos scenario deadlocked (exceeded {secs}s)"),
    }
}

/// Silences the *injected* worker panics (their message carries the
/// "fault injection" marker) so chaos runs do not spam stderr; every
/// other panic still reports through the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("fault injection") {
                default_hook(info);
            }
        }));
    });
}

fn cheap_handle() -> ModelHandle {
    let net = toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 4);
    ModelHandle::from_network(&net, 7).expect("freeze model")
}

fn sample(shape: FeatureShape, salt: usize) -> Tensor {
    Tensor::from_vec(
        &[shape.channels, shape.height, shape.width],
        (0..shape.elems())
            .map(|v| (((v * 13 + salt * 101) % 19) as f32 - 9.0) / 5.0)
            .collect(),
    )
}

/// Serving-worker count for the chaos run: the `MBS_SERVE_WORKERS` knob
/// when set (the CI chaos leg pins 2), else 2.
fn chaos_workers() -> usize {
    std::env::var("MBS_SERVE_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

/// The headline chaos run: jittered producers at well over queue
/// capacity, two injected worker panics, one slow-worker stall, one
/// corrupt swap file, and one good hot swap — all while counting every
/// outcome. Accounting must balance exactly and the server must still
/// serve at the end.
#[test]
fn overload_panics_and_swaps_keep_exact_accounting() {
    quiet_injected_panics();
    with_timeout(120, || {
        const PRODUCERS: usize = 4;
        const REQUESTS: usize = 60;
        let handle = Arc::new(cheap_handle());
        let fault = ServeFaultPlan::default()
            .panic_at(3)
            .panic_at(9)
            .stall_at(6, Duration::from_millis(2));
        let server = Server::start_with_faults(
            &handle,
            ServeConfig {
                workers: chaos_workers(),
                max_batch: 4,
                max_wait_us: 500,
                queue_depth: 8,
                ..ServeConfig::default()
            },
            fault,
        );

        let ok = Arc::new(AtomicU64::new(0));
        let structured = Arc::new(AtomicU64::new(0));
        let refused = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let client = server.client();
                let shape = handle.input();
                let (ok, structured, refused) = (
                    Arc::clone(&ok),
                    Arc::clone(&structured),
                    Arc::clone(&refused),
                );
                thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(p as u64);
                    for j in 0..REQUESTS {
                        let s = sample(shape, p * REQUESTS + j);
                        let opts = SubmitOptions::priority((j % 3) as u8)
                            .deadline(Duration::from_millis(500));
                        // Half the traffic uses backpressure (blocking)
                        // submission, half non-blocking admission — both
                        // paths must account exactly.
                        let pending = if j % 2 == 0 {
                            client.submit_with(&s, opts)
                        } else {
                            client.try_submit(&s, opts)
                        };
                        match pending {
                            Ok(pending) => match pending.wait_timeout(Duration::from_secs(60)) {
                                Ok(_) => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(
                                    ServeError::DeadlineExceeded
                                    | ServeError::Overloaded { .. }
                                    | ServeError::WorkerFailed,
                                ) => {
                                    structured.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("producer {p} request {j}: unexpected {e}"),
                            },
                            Err(ServeError::Overloaded { retry_after_us }) => {
                                assert!(retry_after_us > 0, "refusals carry a backoff hint");
                                refused.fetch_add(1, Ordering::Relaxed);
                            }
                            // Blocking submits only fail like this if the
                            // breaker tripped — two isolated panics must
                            // not trip it.
                            Err(e) => panic!("producer {p} request {j}: unexpected {e}"),
                        }
                        thread::sleep(Duration::from_micros(rng.gen_range(0u64..300)));
                    }
                })
            })
            .collect();

        // Mid-storm: a corrupt swap file must be refused with the old
        // model still serving, and a good swap must go through.
        thread::sleep(Duration::from_millis(30));
        let dir = std::env::temp_dir().join(format!("mbsserve-chaos-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let corrupt = dir.join("ckpt-00000001.mbsckpt");
        fs::write(&corrupt, b"not a checkpoint at all").expect("write corrupt");
        let net = toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 4);
        match server.swap_file(&net, &corrupt) {
            Err(SwapError::Load(_)) => {}
            other => panic!("corrupt swap file must be refused, got {other:?}"),
        }
        let replacement = ModelHandle::from_network(&net, 8).expect("freeze replacement");
        server.swap(replacement).expect("valid swap");
        let _ = fs::remove_dir_all(&dir);

        for p in producers {
            p.join().expect("producer panicked");
        }

        // The server survived: it still answers after panics, the stall,
        // the refused swap, and the real swap.
        let probe = sample(handle.input(), 424242);
        server
            .client()
            .submit(&probe)
            .expect("post-chaos submit")
            .wait_timeout(Duration::from_secs(30))
            .expect("post-chaos response");
        assert!(
            !server.is_degraded(),
            "isolated panics must not trip the breaker"
        );

        let stats = server.shutdown();
        let offered = (PRODUCERS * REQUESTS) as u64;
        let (ok, structured, refused) = (
            ok.load(Ordering::Relaxed),
            structured.load(Ordering::Relaxed),
            refused.load(Ordering::Relaxed),
        );
        // Exact accounting: every offered request is exactly one of
        // answered-with-prediction, answered-with-structured-error, or
        // refused at admission.
        assert_eq!(ok + structured + refused, offered);
        // The server's own counters agree with what the producers saw
        // (+1 for the probe request above).
        assert_eq!(stats.requests, ok + 1);
        assert_eq!(stats.answered(), ok + structured + 1);
        assert_eq!(stats.panics, 2, "both injected panics were caught");
        assert_eq!(stats.respawns, 2, "both panicked workers respawned");
        assert_eq!(stats.swaps, 1, "only the valid swap flipped the model");
        // Both paths actually ran under this load.
        assert!(ok > 0, "some requests must be served under overload");
    });
}

/// Expired requests are answered before batching: while a stalled worker
/// blocks the (single-worker) server, queued requests whose deadlines
/// pass are answered `DeadlineExceeded` by the collector's harvest and
/// never reach the model.
#[test]
fn expired_requests_never_reach_the_model() {
    quiet_injected_panics();
    with_timeout(60, || {
        let handle = cheap_handle();
        let server = Server::start_with_faults(
            &handle,
            ServeConfig {
                workers: 1,
                max_batch: 1, // singleton batches: the stall pins batch 0
                max_wait_us: 0,
                queue_depth: 8,
                ..ServeConfig::default()
            },
            ServeFaultPlan::default().stall_at(0, Duration::from_millis(100)),
        );
        let client = server.client();
        let s = sample(handle.input(), 1);
        // Batch 0: served, but stalled 100 ms.
        let first = client.submit(&s).expect("submit first");
        thread::sleep(Duration::from_millis(10));
        // Queued behind the stall with 2 ms deadlines: they expire long
        // before the worker frees up.
        let doomed: Vec<_> = (0..3)
            .map(|i| {
                client
                    .try_submit(
                        &sample(handle.input(), 10 + i),
                        SubmitOptions::default().deadline(Duration::from_millis(2)),
                    )
                    .expect("try_submit")
            })
            .collect();
        first
            .wait_timeout(Duration::from_secs(30))
            .expect("stalled batch still answers");
        for (i, d) in doomed.into_iter().enumerate() {
            assert_eq!(
                d.wait_timeout(Duration::from_secs(30)),
                Err(ServeError::DeadlineExceeded),
                "doomed request {i}"
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.expired, 3, "all three deadlines harvested");
        assert_eq!(stats.requests, 1, "expired requests never batched");
    });
}

/// A waiter that times out abandons its slot: the worker's late answer is
/// dropped on the spot (no error, no leak), and the server keeps serving.
#[test]
fn timed_out_waiter_reclaims_its_slot() {
    quiet_injected_panics();
    with_timeout(60, || {
        let handle = cheap_handle();
        let server = Server::start_with_faults(
            &handle,
            ServeConfig {
                workers: 1,
                max_batch: 1,
                max_wait_us: 0,
                queue_depth: 4,
                ..ServeConfig::default()
            },
            ServeFaultPlan::default().stall_at(0, Duration::from_millis(80)),
        );
        let client = server.client();
        let s = sample(handle.input(), 3);
        // The waiter gives up at 5 ms; the stalled worker answers at
        // ~80 ms into an abandoned slot.
        let impatient = client.submit(&s).expect("submit");
        assert_eq!(
            impatient.wait_timeout(Duration::from_millis(5)),
            Err(ServeError::DeadlineExceeded)
        );
        // The late fill must not hurt the worker: the next request is
        // served normally.
        let second = client.submit(&s).expect("submit after timeout");
        second
            .wait_timeout(Duration::from_secs(30))
            .expect("server still serves after an abandoned slot");
        let stats = server.shutdown();
        assert_eq!(
            stats.requests, 2,
            "both batches dispatched; the late answer was dropped, not an error"
        );
    });
}
