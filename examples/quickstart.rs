//! Quickstart: schedule ResNet50 with MBS and simulate one training step on
//! WaveCore.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mbs::cnn::networks::resnet;
use mbs::core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};
use mbs::wavecore::WaveCore;

fn main() {
    let net = resnet(50);
    let hw = HardwareConfig::default();

    // 1. Build the MBS schedule: layer groups with per-group sub-batches.
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
    println!("{}", schedule.describe(&net));

    // 2. Analyze DRAM traffic against the conventional baseline.
    let baseline = MbsScheduler::new(&net, &hw, ExecConfig::Baseline).schedule();
    let t_base = analyze(&net, &baseline, hw.global_buffer_bytes);
    let t_mbs = analyze(&net, &schedule, hw.global_buffer_bytes);
    println!(
        "DRAM traffic/step: baseline {:.2} GB -> MBS2 {:.2} GB ({:.1}x reduction)",
        t_base.dram_bytes() as f64 / 1e9,
        t_mbs.dram_bytes() as f64 / 1e9,
        t_base.dram_bytes() as f64 / t_mbs.dram_bytes() as f64
    );

    // 3. Simulate the accelerator: time, energy, utilization.
    let wc = WaveCore::new(hw);
    let base = wc.simulate(&net, ExecConfig::Baseline);
    let mbs = wc.simulate(&net, ExecConfig::Mbs2);
    println!(
        "Step time: baseline {:.1} ms -> MBS2 {:.1} ms (speedup {:.2}x)",
        base.time_s * 1e3,
        mbs.time_s * 1e3,
        base.time_s / mbs.time_s
    );
    println!(
        "Energy: {:.2} J -> {:.2} J; systolic utilization {:.1}% -> {:.1}%",
        base.energy_j(),
        mbs.energy_j(),
        100.0 * base.utilization,
        100.0 * mbs.utilization
    );
}
