//! The paper's correctness claim, live: training with MBS sub-batch
//! serialization is numerically equivalent to conventional full-mini-batch
//! training when the normalization is per-sample (GN) — and demonstrably
//! NOT equivalent with batch normalization.
//!
//! ```sh
//! cargo run --release --example train_equivalence
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs::train::data::generate;
use mbs::train::executor::{evaluate, train_step_full, train_step_mbs};
use mbs::train::model::MiniResNet;
use mbs::train::norm::NormChoice;
use mbs::train::optim::Sgd;
use mbs::train::Module;

fn max_param_diff(a: &mut MiniResNet, b: &mut MiniResNet) -> f32 {
    let mut pa = Vec::new();
    a.visit_params(&mut |p| pa.push(p.value.clone()));
    let mut i = 0;
    let mut worst = 0.0f32;
    b.visit_params(&mut |p| {
        worst = worst.max(pa[i].max_abs_diff(&p.value));
        i += 1;
    });
    worst
}

fn main() {
    let train_set = generate(64, 8, 0.25, 404);
    let val_set = generate(32, 8, 0.25, 405);

    for (label, choice) in [
        ("GroupNorm", NormChoice::Group(4)),
        ("BatchNorm", NormChoice::Batch),
    ] {
        // Identically seeded twins: one trains conventionally, one with MBS.
        let mut full = MiniResNet::new(3, 4, 1, choice, &mut StdRng::seed_from_u64(42));
        let mut mbs = MiniResNet::new(3, 4, 1, choice, &mut StdRng::seed_from_u64(42));
        let mut oa = Sgd::new(0.05, 0.9, 1e-4);
        let mut ob = Sgd::new(0.05, 0.9, 1e-4);

        for step in 0..10 {
            let lf = train_step_full(&mut full, &train_set.images, &train_set.labels, &mut oa);
            let lm = train_step_mbs(&mut mbs, &train_set.images, &train_set.labels, 4, &mut ob);
            if step % 3 == 0 {
                println!(
                    "{label} step {step}: loss full={lf:.4} mbs={lm:.4}, max param diff {:.2e}",
                    max_param_diff(&mut full, &mut mbs)
                );
            }
        }
        let diff = max_param_diff(&mut full, &mut mbs);
        let (_, err_full) = evaluate(&mut full, &val_set.images, &val_set.labels, 16);
        let (_, err_mbs) = evaluate(&mut mbs, &val_set.images, &val_set.labels, 16);
        println!(
            "{label}: after 10 steps, max param diff {:.2e}; val error full {:.1}% vs mbs {:.1}%",
            diff, err_full, err_mbs
        );
        if diff < 1e-3 {
            println!("=> {label} + MBS is numerically faithful to full-batch training\n");
        } else {
            println!(
                "=> {label} diverges under serialization (expected for BN: its \
                      statistics need the whole mini-batch)\n"
            );
        }
    }
}
