//! Define your own CNN with the IR builder, schedule it with MBS, and
//! inspect the traffic/time trade-offs — the workflow a downstream user
//! would follow for a network that is not in the zoo.
//!
//! ```sh
//! cargo run --release --example custom_network
//! ```

use mbs::cnn::{Block, FeatureShape, Layer, NetworkBuilder, Node, NormKind, PoolKind};
use mbs::core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};
use mbs::wavecore::WaveCore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A VGG-ish stem with one residual block, for 128x128 inputs.
    let mut b = NetworkBuilder::new("CustomNet", FeatureShape::new(3, 128, 128), 16)
        .conv("conv1", 32, 3, 1, 1)?
        .norm("norm1", NormKind::Group { groups: 8 })
        .relu("relu1")
        .pool("pool1", PoolKind::Max, 2, 2, 0)?;

    // Hand-built residual block: two 3x3 convs + identity shortcut.
    let input = b.shape();
    let c1 = Layer::conv("res.1.conv", input, 32, 3, 1, 1)?;
    let n1 = Layer::norm("res.1.norm", c1.output, NormKind::Group { groups: 8 });
    let r1 = Layer::relu("res.1.relu", n1.output);
    let c2 = Layer::conv("res.2.conv", r1.output, 32, 3, 1, 1)?;
    let n2 = Layer::norm("res.2.norm", c2.output, NormKind::Group { groups: 8 });
    let block = Block::residual("res", input, vec![c1, n1, r1, c2, n2], vec![])?;
    b = b.push(Node::Block(block));

    let net = b
        .conv("conv2", 64, 3, 2, 1)?
        .norm("norm2", NormKind::Group { groups: 8 })
        .relu("relu2")
        .global_avg_pool("gap")
        .fully_connected("fc", 10)
        .build();

    println!("{net}");

    let hw = HardwareConfig::default();
    for cfg in [ExecConfig::Baseline, ExecConfig::Mbs1, ExecConfig::Mbs2] {
        let schedule = MbsScheduler::new(&net, &hw, cfg).schedule();
        let traffic = analyze(&net, &schedule, hw.global_buffer_bytes);
        let report = WaveCore::new(hw).simulate_scheduled(&net, &schedule);
        println!(
            "{:<9} groups {:>2}  traffic {:>7.1} MB  time {:>6.2} ms  util {:.2}",
            cfg.label(),
            schedule.groups().len(),
            traffic.dram_bytes() as f64 / 1e6,
            report.time_s * 1e3,
            report.utilization
        );
    }
    Ok(())
}
