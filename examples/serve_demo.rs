//! Generate → train (streamed) → kill → resume → serve: the full
//! lifecycle on a tiny net, off **one on-disk dataset**.
//!
//! Generates a synthetic-ImageNet `*.mbsds` file straight to disk,
//! trains `TinyResNet1` over it through the background-prefetch
//! [`StreamLoader`](mbs::train::StreamLoader) with crash-safe
//! checkpointing, kills the run mid-epoch (deterministically, via the
//! test fault plan), resumes it from the checkpoint directory — the
//! resumed curve is bitwise the one the unkilled run would have produced
//! — then loads the newest checkpoint into a frozen
//! [`ModelHandle`](mbs::serve::ModelHandle) (state imported, batch norms
//! folded), starts the dynamic-batching server sized by the hardware
//! cache budget, and fields a burst of single-sample requests.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::time::Instant;

use mbs::cnn::networks::toy;
use mbs::core::{ExecConfig, HardwareConfig, MbsScheduler};
use mbs::serve::{ModelHandle, ServeConfig, Server};
use mbs::train::data::generate;
use mbs::train::loader::generate_to_chunked;
use mbs::train::module::slice_batch;
use mbs::train::training::{train_grouped_source, DataSource, TrainConfig, TrainError};
use mbs::train::{CheckpointConfig, FaultPlan};

fn main() {
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let net = toy::tiny_resnet(1, 8);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
        .with_batch(8)
        .schedule();
    let dir = std::env::temp_dir().join(format!("mbs-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt_dir = dir.join("ckpts");

    // 1. Generate the training set straight to disk: 32 samples of
    //    32x32 in 8-sample checksummed chunks. The file is bitwise what
    //    `generate(32, 32, 0.3, 61)` would build in memory — the
    //    training loop below never materializes more than a few batches.
    let data_path = dir.join("train.mbsds");
    let disk = generate_to_chunked(&data_path, 32, 32, 0.3, 61, 8).expect("generate dataset");
    println!(
        "generated {}: {} samples {:?}, {} chunks, {} B",
        data_path.display(),
        disk.len(),
        disk.shape(),
        disk.num_chunks(),
        std::fs::metadata(&data_path).map(|m| m.len()).unwrap_or(0)
    );
    let source = DataSource::Stream(data_path);
    let val_set = generate(8, 32, 0.3, 62);

    // 2. Train over the streamed source with per-step checkpoints — and
    //    kill the run after its first mid-epoch save (the FaultPlan is
    //    the test harness's deterministic stand-in for `kill -9`).
    let mut cfg = TrainConfig {
        epochs: 1,
        batch: 8,
        checkpoint: Some(CheckpointConfig {
            dir: ckpt_dir.clone(),
            every_steps: 1,
            keep: 2,
            resume: true,
        }),
        fault_plan: Some(FaultPlan::kill_after(1)),
        ..TrainConfig::default()
    };
    match train_grouped_source(&net, &schedule, &source, &val_set, &cfg) {
        Err(TrainError::Killed { saves }) => {
            println!("killed mid-epoch after {saves} checkpoint save(s), as planned")
        }
        other => panic!("expected the planned kill, got {other:?}"),
    }

    // 3. Resume from the checkpoint directory. The checkpoint carries the
    //    epoch-start RNG state, so the resumed run replays the same
    //    shuffle and finishes with bitwise the curve and parameters the
    //    uninterrupted run would have produced — streamed or not.
    cfg.fault_plan = None;
    let curve = train_grouped_source(&net, &schedule, &source, &val_set, &cfg).expect("resume");
    let last = curve.last().expect("one epoch");
    println!(
        "resumed + finished {}: loss {:.4}, val error {:.1}%",
        net.name(),
        last.train_loss,
        last.val_error_pct
    );

    // 4. Freeze the newest checkpoint into a serving handle. The same
    //    schedule fingerprint that guards resume guards serving.
    let model = ModelHandle::load_latest(&net, &schedule, &ckpt_dir).expect("load checkpoint");
    println!(
        "serving {}: input {:?}, {} classes, {} B/sample through the widest node",
        model.name(),
        model.input(),
        model.classes(),
        model.per_sample_bytes()
    );

    // 5. Serve: workers per core, batches capped by the cache budget.
    let serve_hw = HardwareConfig::new();
    let config = ServeConfig::for_model(&model, &serve_hw);
    println!(
        "server: {} workers, max batch {} (budget-capped), max wait {} us",
        config.workers, config.max_batch, config.max_wait_us
    );
    let server = Server::start(&model, config);
    let client = server.client();

    // 6. Query: a burst of single-sample requests from the val set.
    let t0 = Instant::now();
    let pending: Vec<_> = (0..val_set.len())
        .map(|i| {
            let sample = slice_batch(&val_set.images, i, i + 1);
            client.submit(&sample).expect("submit")
        })
        .collect();
    let mut correct = 0;
    for (i, p) in pending.into_iter().enumerate() {
        let prediction = p.wait().expect("response");
        if prediction.class == val_set.labels[i] {
            correct += 1;
        }
    }
    let elapsed = t0.elapsed();
    let stats = server.shutdown();
    println!(
        "answered {} requests in {:.1} ms ({} batches); {}/{} match the labels",
        stats.requests,
        elapsed.as_secs_f64() * 1e3,
        stats.batches,
        correct,
        val_set.len()
    );
    for (size, &count) in stats.histogram.iter().enumerate() {
        if count > 0 {
            println!("  batch size {size}: {count}x");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
