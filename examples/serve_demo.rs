//! Train → checkpoint → serve: the full lifecycle on a tiny net.
//!
//! Trains `TinyResNet1` for one grouped epoch with crash-safe
//! checkpointing, loads the newest checkpoint into a frozen
//! [`ModelHandle`](mbs::serve::ModelHandle) (state imported, batch norms
//! folded), starts the dynamic-batching server sized by the hardware
//! cache budget, and fields a burst of single-sample requests.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::time::Instant;

use mbs::cnn::networks::toy;
use mbs::core::{ExecConfig, HardwareConfig, MbsScheduler};
use mbs::serve::{ModelHandle, ServeConfig, Server};
use mbs::train::data::generate;
use mbs::train::module::slice_batch;
use mbs::train::training::{train_grouped, TrainConfig};
use mbs::train::CheckpointConfig;

fn main() {
    // 1. Train one grouped epoch with checkpoints, exactly like the
    //    crash-resume path: the serving side only ever sees the files.
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let net = toy::tiny_resnet(1, 8);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
        .with_batch(8)
        .schedule();
    let dir = std::env::temp_dir().join(format!("mbs-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let train_set = generate(16, 32, 0.3, 61);
    let val_set = generate(8, 32, 0.3, 62);
    let cfg = TrainConfig {
        epochs: 1,
        batch: 8,
        checkpoint: Some(CheckpointConfig {
            dir: dir.clone(),
            every_steps: 1,
            keep: 2,
            resume: false,
        }),
        ..TrainConfig::default()
    };
    let curve = train_grouped(&net, &schedule, &train_set, &val_set, &cfg).expect("training");
    let last = curve.last().expect("one epoch");
    println!(
        "trained {}: loss {:.4}, val error {:.1}%",
        net.name(),
        last.train_loss,
        last.val_error_pct
    );

    // 2. Freeze the newest checkpoint into a serving handle. The same
    //    schedule fingerprint that guards resume guards serving.
    let model = ModelHandle::load_latest(&net, &schedule, &dir).expect("load checkpoint");
    println!(
        "serving {}: input {:?}, {} classes, {} B/sample through the widest node",
        model.name(),
        model.input(),
        model.classes(),
        model.per_sample_bytes()
    );

    // 3. Serve: workers per core, batches capped by the cache budget.
    let serve_hw = HardwareConfig::new();
    let config = ServeConfig::for_model(&model, &serve_hw);
    println!(
        "server: {} workers, max batch {} (budget-capped), max wait {} us",
        config.workers, config.max_batch, config.max_wait_us
    );
    let server = Server::start(&model, config);
    let client = server.client();

    // 4. Query: a burst of single-sample requests from the val set.
    let t0 = Instant::now();
    let pending: Vec<_> = (0..val_set.len())
        .map(|i| {
            let sample = slice_batch(&val_set.images, i, i + 1);
            client.submit(&sample).expect("submit")
        })
        .collect();
    let mut correct = 0;
    for (i, p) in pending.into_iter().enumerate() {
        let prediction = p.wait().expect("response");
        if prediction.class == val_set.labels[i] {
            correct += 1;
        }
    }
    let elapsed = t0.elapsed();
    let stats = server.shutdown();
    println!(
        "answered {} requests in {:.1} ms ({} batches); {}/{} match the labels",
        stats.requests,
        elapsed.as_secs_f64() * 1e3,
        stats.batches,
        correct,
        val_set.len()
    );
    for (size, &count) in stats.histogram.iter().enumerate() {
        if count > 0 {
            println!("  batch size {size}: {count}x");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
