//! Schedule-driven execution end to end: build a network in the IR, let
//! the MBS scheduler pick layer groups and per-group sub-batches against
//! the CPU's cache budget, then *run* one grouped training step with that
//! exact plan.
//!
//! ```sh
//! cargo run --release --example schedule_demo
//! # or size groups against a different cache budget:
//! MBS_CACHE_BUDGET=2M cargo run --release --example schedule_demo
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs::cnn::networks::toy;
use mbs::core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};
use mbs::train::data::generate;
use mbs::train::grouped::GroupedExecutor;
use mbs::train::lower::lower;
use mbs::train::Sgd;

fn main() {
    // 1. Describe the network once, in the IR.
    let net = toy::tiny_resnet(1, 8);
    println!("{net}");

    // 2. Schedule it against this machine's cache budget (override with
    //    MBS_CACHE_BUDGET). The tiny network fits a real LLC whole, so
    //    shrink the budget to force genuine multi-group serialization.
    let hw = HardwareConfig::cpu().with_global_buffer(128 * 1024);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    println!("{}", schedule.describe(&net));
    let traffic = analyze(&net, &schedule, hw.global_buffer_bytes);
    println!(
        "modeled DRAM traffic under this schedule: {:.2} MiB/step\n",
        traffic.dram_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 3. Lower the same IR into runnable layers and execute the plan.
    let mut model = lower(&net, &mut StdRng::seed_from_u64(1)).expect("tiny_resnet lowers");
    let mut exec = GroupedExecutor::new(&schedule, model.len());
    let d = generate(8, 32, 0.3, 7);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let loss = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
    println!(
        "one grouped training step: {} groups, sub-batches {:?}, loss {loss:.4}",
        exec.groups().len(),
        schedule.sub_batches()
    );
}
