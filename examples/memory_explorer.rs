//! Design-space exploration: can a cheaper, slower memory system train your
//! network as fast as HBM2? (The paper's Fig. 12 motivation: MBS makes
//! WaveCore robust to the memory system, so LPDDR4 becomes viable.)
//!
//! ```sh
//! cargo run --release --example memory_explorer [resnet50|resnet101|resnet152|inception_v3|inception_v4|alexnet]
//! ```

use mbs::cnn::networks;
use mbs::cnn::Network;
use mbs::core::{ExecConfig, HardwareConfig, MemoryKind};
use mbs::wavecore::WaveCore;

fn pick_network(name: &str) -> Network {
    match name {
        "resnet50" => networks::resnet(50),
        "resnet101" => networks::resnet(101),
        "resnet152" => networks::resnet(152),
        "inception_v3" => networks::inception_v3(),
        "inception_v4" => networks::inception_v4(),
        "alexnet" => networks::alexnet(),
        other => {
            eprintln!("unknown network {other}, using resnet50");
            networks::resnet(50)
        }
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "resnet50".to_owned());
    let net = pick_network(&name);
    println!(
        "Exploring memory systems for {} (MBS2 vs Baseline):\n",
        net.name()
    );
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>10}",
        "memory", "BW (GiB/s)", "baseline (ms)", "MBS2 (ms)", "MBS2 win"
    );

    let mut best: Option<(MemoryKind, f64)> = None;
    for kind in [
        MemoryKind::Hbm2X2,
        MemoryKind::Hbm2,
        MemoryKind::Gddr5,
        MemoryKind::Lpddr4,
    ] {
        let hw = HardwareConfig::default().with_memory(kind);
        let bw = hw.memory.total_bw_gib_s();
        let wc = WaveCore::new(hw);
        let base = wc.simulate(&net, ExecConfig::Baseline);
        let mbs = wc.simulate(&net, ExecConfig::Mbs2);
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>14.1} {:>9.2}x",
            format!("{kind:?}"),
            bw,
            base.time_s * 1e3,
            mbs.time_s * 1e3,
            base.time_s / mbs.time_s
        );
        let better = best.is_none_or(|(_, t)| mbs.time_s < t * 0.98);
        if better {
            best = Some((kind, mbs.time_s));
        }
    }

    // The punchline the paper makes: compare the cheapest memory under MBS
    // with the most expensive under the conventional flow.
    let lp = WaveCore::new(HardwareConfig::default().with_memory(MemoryKind::Lpddr4))
        .simulate(&net, ExecConfig::Mbs2);
    let hbm_base = WaveCore::new(HardwareConfig::default().with_memory(MemoryKind::Hbm2X2))
        .simulate(&net, ExecConfig::Baseline);
    println!(
        "\nMBS2 on mobile-class LPDDR4: {:.1} ms vs conventional training on 2xHBM2: {:.1} ms",
        lp.time_s * 1e3,
        hbm_base.time_s * 1e3
    );
    if lp.time_s < hbm_base.time_s {
        println!("=> the cheap memory system wins once MBS removes the bandwidth pressure.");
    }
}
