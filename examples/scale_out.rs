//! Multi-accelerator scale-out (paper §4.2): each WaveCore trains a shard
//! of the global mini-batch with MBS locally; devices synchronize only for
//! the gradient all-reduce.
//!
//! ```sh
//! cargo run --release --example scale_out
//! ```

use mbs::cnn::networks::resnet;
use mbs::core::{ExecConfig, HardwareConfig};
use mbs::wavecore::{weak_scaling, Interconnect};

fn main() {
    let net = resnet(50);
    let hw = HardwareConfig::default();
    for (name, link) in [
        ("fabric (100 GB/s)", Interconnect::fabric()),
        ("PCIe3 (12 GB/s)", Interconnect::pcie3()),
    ] {
        println!("ResNet50 weak scaling over {name}:");
        println!(
            "{:>8} {:>13} {:>10} {:>14} {:>11}",
            "devices", "global batch", "step ms", "samples/s", "efficiency"
        );
        for p in weak_scaling(&net, ExecConfig::Mbs2, &hw, link, &[1, 2, 4, 8, 16, 32]) {
            println!(
                "{:>8} {:>13} {:>10.2} {:>14.0} {:>10.1}%",
                p.devices,
                p.global_batch,
                p.time_s * 1e3,
                p.samples_per_s,
                100.0 * p.efficiency
            );
        }
        println!();
    }
}
